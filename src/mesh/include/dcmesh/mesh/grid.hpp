#pragma once
// grid.hpp — 3-D periodic finite-difference mesh.
//
// LFD represents each electronic wave function on a real-space mesh of
// Ngrid = nx*ny*nz points ("for simple data parallelism", paper Sec. IV-D).
// The grid is periodic (supercell boundary conditions) and cubic in the
// systems the paper studies (64^3 and 96^3).

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace dcmesh::mesh {

/// Index and geometry of a periodic 3-D mesh.  Points are ordered
/// x-fastest: index = ix + nx*(iy + ny*iz).
struct grid3d {
  std::int64_t nx = 0;
  std::int64_t ny = 0;
  std::int64_t nz = 0;
  double spacing = 1.0;  ///< Mesh spacing h in Bohr (uniform).

  [[nodiscard]] std::int64_t size() const noexcept { return nx * ny * nz; }

  /// Box edge lengths in Bohr.
  [[nodiscard]] std::array<double, 3> box() const noexcept {
    return {nx * spacing, ny * spacing, nz * spacing};
  }

  /// Cell volume element h^3 (for mesh integrals).
  [[nodiscard]] double dv() const noexcept {
    return spacing * spacing * spacing;
  }

  /// Total box volume.
  [[nodiscard]] double volume() const noexcept {
    return static_cast<double>(size()) * dv();
  }

  /// Linear index of (ix, iy, iz); caller must pass in-range indices.
  [[nodiscard]] std::int64_t index(std::int64_t ix, std::int64_t iy,
                                   std::int64_t iz) const noexcept {
    assert(ix >= 0 && ix < nx && iy >= 0 && iy < ny && iz >= 0 && iz < nz);
    return ix + nx * (iy + ny * iz);
  }

  /// Periodic wrap of a possibly out-of-range coordinate along axis n.
  [[nodiscard]] static std::int64_t wrap(std::int64_t i,
                                         std::int64_t n) noexcept {
    i %= n;
    return i < 0 ? i + n : i;
  }

  /// Cartesian position of a grid point (Bohr), origin at the box corner.
  [[nodiscard]] std::array<double, 3> position(std::int64_t ix,
                                               std::int64_t iy,
                                               std::int64_t iz) const noexcept {
    return {ix * spacing, iy * spacing, iz * spacing};
  }

  /// Minimum-image squared distance between two positions in the periodic
  /// box (used for potentials around atoms).
  [[nodiscard]] double min_image_dist2(const std::array<double, 3>& a,
                                       const std::array<double, 3>& b)
      const noexcept {
    const auto edges = box();
    double d2 = 0.0;
    for (int axis = 0; axis < 3; ++axis) {
      double d = a[axis] - b[axis];
      const double edge = edges[static_cast<std::size_t>(axis)];
      d -= edge * static_cast<double>(static_cast<long long>(
                      d / edge + (d >= 0.0 ? 0.5 : -0.5)));
      d2 += d * d;
    }
    return d2;
  }

  /// Cubic grid helper (the paper's 64^3 / 96^3 meshes).
  [[nodiscard]] static grid3d cubic(std::int64_t n, double spacing) noexcept {
    return {n, n, n, spacing};
  }
};

}  // namespace dcmesh::mesh
