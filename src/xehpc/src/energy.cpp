#include "dcmesh/xehpc/energy.hpp"

namespace dcmesh::xehpc {
namespace {

/// Engine class a GEMM's compute phase runs on under `mode`.
bool uses_matrix_engines(gemm_precision precision, blas::compute_mode mode) {
  if (precision == gemm_precision::fp64) return false;
  switch (mode) {
    case blas::compute_mode::float_to_bf16:
    case blas::compute_mode::float_to_bf16x2:
    case blas::compute_mode::float_to_bf16x3:
    case blas::compute_mode::float_to_tf32:
      return true;
    default:
      return false;
  }
}

}  // namespace

energy_estimate model_gemm_energy(const device_spec& spec,
                                  const calibration& cal,
                                  const power_spec& power, gemm_shape shape,
                                  blas::compute_mode mode) {
  const gemm_time t = model_gemm(spec, cal, shape, mode);
  const double engine_w = uses_matrix_engines(shape.precision, mode)
                              ? power.matrix_active_w
                              : power.vector_active_w;
  energy_estimate e;
  e.seconds = t.total_s();
  e.joules = power.idle_w * t.total_s()          // baseline over the call
             + engine_w * t.compute_s            // engine-active phase
             + power.hbm_active_w * t.memory_s;  // streaming phase
  return e;
}

energy_estimate model_series_energy(const device_spec& spec,
                                    const calibration& cal,
                                    const power_spec& power,
                                    const system_shape& sys,
                                    lfd_precision precision, int qd_steps) {
  const blas::compute_mode mode = precision.data == gemm_precision::fp64
                                      ? blas::compute_mode::standard
                                      : precision.mode;
  energy_estimate step;
  for (const auto& call : canonical_qd_step_calls(sys, precision.data)) {
    const energy_estimate g =
        model_gemm_energy(spec, cal, power, call.shape, mode);
    step.seconds += g.seconds;
    step.joules += g.joules;
  }
  // Non-BLAS mesh kernels are bandwidth-bound sweeps: idle + HBM draw.
  const double mesh_s =
      model_qd_step_mesh_seconds(spec, cal, sys, precision);
  step.seconds += mesh_s;
  step.joules += (power.idle_w + power.hbm_active_w) * mesh_s;

  energy_estimate total;
  total.seconds = step.seconds * qd_steps;
  total.joules = step.joules * qd_steps;
  return total;
}

}  // namespace dcmesh::xehpc
