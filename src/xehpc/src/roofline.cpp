#include "dcmesh/xehpc/roofline.hpp"

#include <algorithm>
#include <cmath>

#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::xehpc {
namespace {

using blas::compute_mode;

/// Saturating shape-efficiency factor d/(d + half).
double sat(double d, double half) noexcept { return d / (d + half); }

/// Shape efficiency of the vector-engine GEMM path.
double vector_shape_eff(const calibration& cal, const gemm_shape& s) {
  return sat(static_cast<double>(s.m), cal.vector_m_half) *
         sat(static_cast<double>(s.n), cal.vector_n_half) *
         sat(static_cast<double>(s.k), cal.vector_k_half);
}

/// Shape efficiency of the XMX systolic GEMM path.
double matrix_shape_eff(const calibration& cal, const gemm_shape& s) {
  return sat(static_cast<double>(s.m), cal.matrix_m_half) *
         cal.matrix_n_scale * sat(static_cast<double>(s.n),
                                  cal.matrix_n_half) *
         sat(static_cast<double>(s.k), cal.matrix_k_half);
}

/// Standard-arithmetic flop count of the call.
double nominal_flops(const gemm_shape& s) noexcept {
  return blas::gemm_flops(s.is_complex, s.m, s.n, s.k);
}

/// Bytes streamed from/to HBM for one call (A and B read once, C read and
/// written once; packing reuse keeps traffic near this floor for the
/// shapes DCMESH uses, where k is huge and A/B dominate).
double stream_bytes(const gemm_shape& s, compute_mode mode,
                    const calibration& cal) noexcept {
  const std::size_t elem =
      (s.precision == gemm_precision::fp64 ? 8u : 4u) *
      (s.is_complex ? 2u : 1u);
  double bytes = blas::gemm_bytes(s.m, s.n, s.k, elem);
  if (mode == compute_mode::complex_3m && s.is_complex) {
    bytes *= cal.complex_3m_traffic;
  }
  return bytes;
}

/// Equivalent component-product count: the first product is full price;
/// subsequent products reuse staged tiles at marginal cost.
double equivalent_products(int products, const calibration& cal) noexcept {
  return 1.0 + (products - 1) * cal.component_marginal_cost;
}

}  // namespace

gemm_time model_gemm(const device_spec& spec, const calibration& cal,
                     gemm_shape shape, compute_mode mode) {
  gemm_time t;
  t.launch_s = cal.kernel_launch_s;
  if (shape.m == 0 || shape.n == 0 || shape.k == 0) return t;

  // FP64 data and FP32 under standard/3M run on the vector engines.
  const bool split_mode =
      shape.precision == gemm_precision::fp32 &&
      (mode == compute_mode::float_to_bf16 ||
       mode == compute_mode::float_to_bf16x2 ||
       mode == compute_mode::float_to_bf16x3 ||
       mode == compute_mode::float_to_tf32);

  t.memory_s = stream_bytes(shape, mode, cal) /
               (spec.hbm_bandwidth_tb_s * 1e12 * cal.hbm_efficiency);

  double flops = nominal_flops(shape);
  if (split_mode) {
    const auto& mi = blas::info(mode);
    const double component_peak_tflops =
        mode == compute_mode::float_to_tf32 ? spec.peak_tf32_tflops
                                            : spec.peak_bf16_tflops;
    const double rate = component_peak_tflops * 1e12 *
                        cal.matrix_sustained * matrix_shape_eff(cal, shape);
    t.compute_s =
        flops * equivalent_products(mi.component_products, cal) / rate;
    return t;
  }

  if (mode == compute_mode::complex_3m && shape.is_complex) {
    flops *= 0.75;  // 3 of 4 multiplications; extra adds are in the traffic.
  }
  const double peak_tflops = shape.precision == gemm_precision::fp64
                                 ? spec.peak_fp64_tflops
                                 : spec.peak_fp32_tflops;
  const double rate = peak_tflops * 1e12 * cal.vector_sustained *
                      vector_shape_eff(cal, shape);
  t.compute_s = flops / rate;
  return t;
}

double model_speedup_vs_fp32(const device_spec& spec, const calibration& cal,
                             gemm_shape shape, compute_mode mode) {
  gemm_shape fp32_shape = shape;
  fp32_shape.precision = gemm_precision::fp32;
  const double reference =
      model_gemm(spec, cal, fp32_shape, compute_mode::standard).total_s();
  const double alternative = model_gemm(spec, cal, shape, mode).total_s();
  return reference / alternative;
}

double peak_theoretical_speedup(const device_spec& spec,
                                blas::compute_mode mode) {
  using blas::compute_mode;
  switch (mode) {
    case compute_mode::float_to_bf16:
      return spec.peak_bf16_tflops / spec.peak_fp32_tflops;
    case compute_mode::float_to_bf16x2:
      return spec.peak_bf16_tflops / spec.peak_fp32_tflops / 3.0;
    case compute_mode::float_to_bf16x3:
      return spec.peak_bf16_tflops / spec.peak_fp32_tflops / 6.0;
    case compute_mode::float_to_tf32:
      return spec.peak_tf32_tflops / spec.peak_fp32_tflops;
    case compute_mode::complex_3m:
      return 4.0 / 3.0;
    case compute_mode::standard:
      return 1.0;
  }
  return 1.0;
}

void install_trace_gemm_model(device_spec spec, calibration cal) {
  trace::set_gemm_time_model(
      [spec, cal](const trace::gemm_model_query& q) -> double {
        const auto mode = blas::parse_compute_mode(q.mode_token);
        if (!mode) return -1.0;
        gemm_shape shape;
        shape.m = static_cast<blas::blas_int>(q.m);
        shape.n = static_cast<blas::blas_int>(q.n);
        shape.k = static_cast<blas::blas_int>(q.k);
        shape.is_complex = q.is_complex;
        shape.precision =
            q.is_fp64 ? gemm_precision::fp64 : gemm_precision::fp32;
        return model_gemm(spec, cal, shape, *mode).total_s();
      });
}

}  // namespace dcmesh::xehpc
