#include "dcmesh/xehpc/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dcmesh::xehpc {

scaled_run model_multi_stack_series(const device_spec& spec,
                                    const calibration& cal,
                                    const fabric_spec& fab,
                                    const system_shape& sys,
                                    lfd_precision precision, int stacks,
                                    int stacks_per_node, int qd_steps) {
  if (stacks < 1) throw std::invalid_argument("stacks must be >= 1");
  if (stacks_per_node < 1) {
    throw std::invalid_argument("stacks_per_node must be >= 1");
  }

  // Orbital-column decomposition: each stack owns ~norb/stacks orbital
  // columns.  Every GEMM keeps its global m and k (the overlap matrix and
  // the mesh are replicated) and shrinks only its n — work drops linearly
  // in the stack count, with the usual narrow-panel efficiency loss.
  const blas::compute_mode mode =
      precision.data == gemm_precision::fp64 ? blas::compute_mode::standard
                                             : precision.mode;
  double blas_step = 0.0;
  for (const auto& call : canonical_qd_step_calls(sys, precision.data)) {
    gemm_shape local_shape = call.shape;
    local_shape.n = std::max<blas::blas_int>(
        1, (call.shape.n + stacks - 1) / stacks);
    blas_step += model_gemm(spec, cal, local_shape, mode).total_s();
  }
  // Mesh kernels act on the local orbital slab only.
  system_shape local = sys;
  local.norb = std::max<blas::blas_int>(1, (sys.norb + stacks - 1) / stacks);
  local.nocc = std::max<blas::blas_int>(
      1, (sys.nocc * local.norb) / std::max<blas::blas_int>(1, sys.norb));
  const double local_step =
      blas_step + model_qd_step_mesh_seconds(spec, cal, local, precision);

  // Per step: all-reduce of the Norb x Norb overlap matrix (complex) built
  // by nlp_prop.  Ring all-reduce moves ~2 * bytes * (s-1)/s per stack.
  double comm_step = 0.0;
  if (stacks > 1) {
    const double elem = precision.data == gemm_precision::fp64 ? 16.0 : 8.0;
    const double overlap_bytes = static_cast<double>(sys.norb) *
                                 static_cast<double>(sys.norb) * elem;
    const bool crosses_node = stacks > stacks_per_node;
    const double bw_gb =
        crosses_node ? fab.node_bandwidth_gb_s : fab.xelink_bandwidth_gb_s;
    const double frac = 2.0 * (stacks - 1) / static_cast<double>(stacks);
    comm_step = overlap_bytes * frac / (bw_gb * 1e9) +
                fab.allreduce_latency_s * std::ceil(std::log2(stacks));
  }

  scaled_run run;
  run.stacks = stacks;
  run.communication_seconds = comm_step * qd_steps;
  run.series_seconds = (local_step + comm_step) * qd_steps;
  const double single =
      model_series_seconds(spec, cal, sys, precision, qd_steps);
  run.parallel_efficiency = single / (run.series_seconds * stacks);
  return run;
}

}  // namespace dcmesh::xehpc
