#include "dcmesh/xehpc/device.hpp"

namespace dcmesh::xehpc {

double theoretical_peak_tflops(const device_spec& spec,
                               peak_precision p) noexcept {
  switch (p) {
    case peak_precision::fp64: return spec.peak_fp64_tflops;
    case peak_precision::fp32: return spec.peak_fp32_tflops;
    case peak_precision::tf32: return spec.peak_tf32_tflops;
    case peak_precision::bf16: return spec.peak_bf16_tflops;
    case peak_precision::fp16: return spec.peak_fp16_tflops;
    case peak_precision::int8: return spec.peak_int8_tops;
  }
  return 0.0;
}

engine peak_engine(peak_precision p) noexcept {
  switch (p) {
    case peak_precision::fp64:
    case peak_precision::fp32:
      return engine::vector;
    default:
      return engine::matrix;
  }
}

std::string_view precision_name(peak_precision p) noexcept {
  switch (p) {
    case peak_precision::fp64: return "FP64";
    case peak_precision::fp32: return "FP32";
    case peak_precision::tf32: return "TF32";
    case peak_precision::bf16: return "BF16";
    case peak_precision::fp16: return "FP16";
    case peak_precision::int8: return "INT8";
  }
  return "?";
}

double ops_per_clock_per_eu(const device_spec& spec,
                            peak_precision p) noexcept {
  const double clocks_per_second = spec.frequency_ghz * 1e9;
  const double total_ops = theoretical_peak_tflops(spec, p) * 1e12;
  return total_ops / (clocks_per_second * spec.execution_units);
}

}  // namespace dcmesh::xehpc
