#include "dcmesh/xehpc/app_model.hpp"

namespace dcmesh::xehpc {

std::vector<qd_blas_call> canonical_qd_step_calls(const system_shape& sys,
                                                  gemm_precision precision) {
  const blas::blas_int g = sys.ngrid;
  const blas::blas_int o = sys.norb;
  const blas::blas_int occ = sys.nocc;
  const blas::blas_int unocc = o - occ;
  const auto cplx = [precision](blas::blas_int m, blas::blas_int n,
                                blas::blas_int k) {
    return gemm_shape{m, n, k, /*is_complex=*/true, precision};
  };
  // The three "BLASified" nonlocal-correction sites the paper names
  // (Section V-A), 9 calls total per QD step:
  return {
      // nlp_prop — Eq. (1): Psi(t) <- c Psi(0) Psi^H(0) Psi(t).
      {"nlp_prop", cplx(o, o, g)},      // G = Psi0^H * Psi(t)
      {"nlp_prop", cplx(g, o, o)},      // Psi += c * Psi0 * G
      {"nlp_prop", cplx(o, o, o)},      // Gram correction O = G^H G
      // calc_energy — kinetic + nonlocal energy in the KS basis.
      {"calc_energy", cplx(o, o, g)},   // T = Psi^H * (K Psi)
      {"calc_energy", cplx(o, o, o)},   // D = F * G (occupation weighting)
      {"calc_energy", cplx(o, o, o)},   // E_rot = G^H * T
      // remap_occ — occupied/unoccupied overlap; Table VII's GEMM.
      {"remap_occ", cplx(occ, unocc, g)},  // S = Psi0_occ^H * Psi_unocc
      {"remap_occ", cplx(occ, occ, unocc)},  // O_occ = S * S^H
      {"remap_occ", cplx(unocc, occ, occ)},  // rotation of leaked occupation
  };
}

double model_qd_step_blas_seconds(const device_spec& spec,
                                  const calibration& cal,
                                  const system_shape& sys,
                                  lfd_precision precision) {
  // FP64 LFD runs every call in standard double arithmetic.
  const blas::compute_mode mode = precision.data == gemm_precision::fp64
                                      ? blas::compute_mode::standard
                                      : precision.mode;
  double total = 0.0;
  for (const auto& call : canonical_qd_step_calls(sys, precision.data)) {
    total += model_gemm(spec, cal, call.shape, mode).total_s();
  }
  return total;
}

double wavefunction_bytes(const system_shape& sys, gemm_precision precision) {
  const double elem = precision == gemm_precision::fp64 ? 16.0 : 8.0;
  return static_cast<double>(sys.ngrid) * static_cast<double>(sys.norb) *
         elem;
}

double model_qd_step_mesh_seconds(const device_spec& spec,
                                  const calibration& cal,
                                  const system_shape& sys,
                                  lfd_precision precision) {
  const bool fp64 = precision.data == gemm_precision::fp64;
  const double state_bytes = wavefunction_bytes(sys, precision.data);
  const double bw_eff = fp64 ? cal.fp64_mesh_bandwidth_efficiency
                             : cal.mesh_bandwidth_efficiency;
  const double bw = spec.hbm_bandwidth_tb_s * 1e12 * bw_eff;
  // One sweep = read + write of the full wave-function block.
  const double swept = cal.mesh_sweeps_per_qd_step * 2.0 * state_bytes;
  return swept / bw + cal.qd_step_overhead_s;
}

double model_series_seconds(const device_spec& spec, const calibration& cal,
                            const system_shape& sys, lfd_precision precision,
                            int qd_steps) {
  const double per_step =
      model_qd_step_blas_seconds(spec, cal, sys, precision) +
      model_qd_step_mesh_seconds(spec, cal, sys, precision);
  return per_step * qd_steps;
}

}  // namespace dcmesh::xehpc
