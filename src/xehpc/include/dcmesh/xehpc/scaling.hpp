#pragma once
// scaling.hpp — multi-stack / multi-node scaling model (paper future work).
//
// The paper's conclusion lists "multi-stack and multi-node runs" as future
// work.  This extension models them: orbitals are partitioned across
// stacks, each QD step's big GEMMs shrink in n, and the nonlocal correction
// requires an all-reduce of the Norb x Norb overlap matrix across stacks
// over Xe-Link (intra-GPU / intra-node) or the host fabric (inter-node).

#include "dcmesh/xehpc/app_model.hpp"

namespace dcmesh::xehpc {

/// Interconnect description for scaled runs.
struct fabric_spec {
  double xelink_bandwidth_gb_s = 300.0;  ///< Per-stack Xe-Link aggregate.
  double node_bandwidth_gb_s = 25.0;     ///< Per-node inter-node fabric.
  double allreduce_latency_s = 2.0e-5;   ///< Per message, per hop.
};

/// Result of a scaled-run estimate.
struct scaled_run {
  int stacks = 1;
  double series_seconds = 0.0;     ///< 500-QD-step wall time.
  double communication_seconds = 0.0;
  double parallel_efficiency = 1.0;  ///< vs ideal linear scaling.
};

/// Model a 500-QD-step series on `stacks` stacks (orbital decomposition).
/// `stacks_per_node` controls when traffic crosses the node fabric.
[[nodiscard]] scaled_run model_multi_stack_series(
    const device_spec& spec, const calibration& cal, const fabric_spec& fab,
    const system_shape& sys, lfd_precision precision, int stacks,
    int stacks_per_node = 4, int qd_steps = 500);

}  // namespace dcmesh::xehpc
