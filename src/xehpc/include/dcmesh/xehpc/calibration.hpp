#pragma once
// calibration.hpp — the free parameters of the Xe-HPC performance model.
//
// Every constant below has a physical meaning and a single place of use in
// roofline.cpp / app_model.cpp.  They are tuned once against the paper's
// published anchors and then frozen; benches print them so results remain
// auditable.  Anchors:
//   * Table VI / Fig 3b: max observed BF16 BLAS speedup 3.91x at
//     (m, n, k) = (128, 3978, 262144) complex FP32;
//   * Fig 3a: 500-QD-step times for the 135-atom system — FP64 ~2800 s,
//     FP32 ~1472 s, BF16 ~972 s;
//   * artifact ordering: BF16 < TF32 < BF16x2 < BF16x3 < 3M < FP32 < FP64.

namespace dcmesh::xehpc {

struct calibration {
  // --- engine sustained fractions (power/thermal derating) ---
  double vector_sustained = 0.80;  ///< FP32/FP64 vector engines.
  double matrix_sustained = 0.52;  ///< XMX sustained under power cap.

  // --- shape-efficiency half-saturation constants (elements) ---
  // eff = m/(m+m_half) * n/(n+n_half) * k/(k+k_half) per engine class.
  double vector_m_half = 16.0;
  double vector_n_half = 64.0;
  double vector_k_half = 256.0;
  double matrix_m_half = 80.0;    ///< Small m starves the systolic array.
  /// XMX N-panel efficiency is matrix_n_scale * n/(n + matrix_n_half):
  /// saturates at matrix_n_scale for wide panels, degrades gently for
  /// narrow ones (fit to Fig 3b's 1.1x..3.9x BF16 range over Norb).
  double matrix_n_scale = 0.88;
  double matrix_n_half = 496.0;
  double matrix_k_half = 1024.0;

  // --- multi-component product overlap ---
  /// Marginal cost of each additional component product relative to the
  /// first (tiles already staged): equivalent_products = 1 + (p-1)*overlap.
  double component_marginal_cost = 0.55;

  // --- memory system ---
  double hbm_efficiency = 0.88;   ///< Achievable fraction of HBM peak.
  /// 3M's extra additions raise its memory traffic slightly (forming
  /// Ar+Ai, Br+Bi panels): multiplier on standard complex GEMM bytes.
  double complex_3m_traffic = 1.15;

  // --- fixed overheads ---
  double kernel_launch_s = 8.0e-6;  ///< Level-Zero launch + sync per kernel.

  // --- application (non-BLAS) model, per QD step ---
  /// Effective full-state memory sweeps per QD step performed by the
  /// non-BLAS LFD kernels (stencil Taylor terms, potential application,
  /// density/current reductions).  One sweep = read + write of the full
  /// Ngrid x Norb complex wave-function block.
  double mesh_sweeps_per_qd_step = 76.0;
  /// Achieved fraction of HBM peak for stencil-bound mesh kernels.
  double mesh_bandwidth_efficiency = 0.42;
  /// FP64 stencil kernels achieve a lower fraction of peak (wider loads,
  /// lower occupancy) — separate knob so the FP64:FP32 anchor can be met.
  double fp64_mesh_bandwidth_efficiency = 0.33;
  /// Fixed per-QD-step overhead (launches, CPU orchestration), seconds.
  double qd_step_overhead_s = 2.0e-4;
};

/// The frozen calibration used by all benches.
[[nodiscard]] inline constexpr calibration default_calibration() noexcept {
  return calibration{};
}

}  // namespace dcmesh::xehpc
