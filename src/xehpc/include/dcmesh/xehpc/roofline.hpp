#pragma once
// roofline.hpp — GEMM execution-time model for one Max 1550 stack.
//
// A staged roofline: a GEMM call costs launch overhead, plus the memory
// time to stream its operands through HBM, plus compute time on the engine
// the active compute mode uses.  Shape-efficiency factors capture the two
// effects the paper calls out (Section V-C): the small m = 128 dimension
// starves the systolic arrays, and sustained throughput is power-limited
// well below the Table I peaks.  Multi-component modes (BF16x2/x3) reuse
// staged tiles across their component products, so marginal products cost
// less than the first — this is what keeps BF16x3 faster than FP32
// end-to-end, as the paper's artifact ordering requires.
//
// Calibration constants live in calibration.hpp; the three anchors they are
// tuned against (max BF16 BLAS speedup 3.91x, 135-atom end-to-end times,
// FP64:FP32 ratio) are printed by the benches that use the model.

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/xehpc/calibration.hpp"
#include "dcmesh/xehpc/device.hpp"

namespace dcmesh::xehpc {

/// Element precision of the GEMM data as stored in memory.
enum class gemm_precision { fp32, fp64 };

/// Shape of a GEMM call (column-major C = op(A)[m x k] * op(B)[k x n]).
struct gemm_shape {
  blas::blas_int m = 0;
  blas::blas_int n = 0;
  blas::blas_int k = 0;
  bool is_complex = false;
  gemm_precision precision = gemm_precision::fp32;
};

/// Breakdown of one modeled GEMM execution.
struct gemm_time {
  double launch_s = 0.0;   ///< Kernel-launch / driver overhead.
  double memory_s = 0.0;   ///< HBM streaming time.
  double compute_s = 0.0;  ///< Engine time (all component products).
  [[nodiscard]] double total_s() const noexcept {
    return launch_s + memory_s + compute_s;
  }
};

/// Model the execution time of one GEMM under `mode` on `spec`.
/// FP64 data always runs the standard vector path; FP32 split modes run on
/// XMX at the component precision's peak.
[[nodiscard]] gemm_time model_gemm(const device_spec& spec,
                                   const calibration& cal, gemm_shape shape,
                                   blas::compute_mode mode);

/// Speedup of `mode` over standard FP32 arithmetic for a shape — the
/// quantity plotted in Figure 3b and tabulated in Table VI.
[[nodiscard]] double model_speedup_vs_fp32(const device_spec& spec,
                                           const calibration& cal,
                                           gemm_shape shape,
                                           blas::compute_mode mode);

/// Peak theoretical speedup of `mode` vs FP32 from the device peaks alone
/// (Table II's right column): component-peak ratio divided by the number of
/// component products; 4/3 for COMPLEX_3M.
[[nodiscard]] double peak_theoretical_speedup(const device_spec& spec,
                                              blas::compute_mode mode);

/// Install model_gemm as the trace layer's predicted-device-time hook
/// (trace::set_gemm_time_model): every GEMM span is then annotated with
/// this model's time for its shape/mode, making measured-vs-modeled gaps
/// visible per kernel in the Chrome trace.
void install_trace_gemm_model(device_spec spec = {}, calibration cal = {});

}  // namespace dcmesh::xehpc
