#pragma once
// app_model.hpp — end-to-end LFD timing model (paper Figure 3a).
//
// A DCMESH quantum-dynamical (QD) step on the GPU consists of 9 BLAS calls
// (the artifact appendix: "Each QD step contains 9 BLAS calls") plus the
// non-BLAS mesh kernels (stencil Taylor terms, local potential application,
// density/current reductions), which are bandwidth-bound sweeps over the
// Ngrid x Norb wave-function block.  This header models the wall time of a
// 500-QD-step series for any LFD precision configuration, using the GEMM
// roofline for the BLAS part and a swept-bytes model for the rest.
//
// The 9-call shape list here is the contract the real LFD implementation in
// src/lfd follows; a test cross-checks the LFD verbose log against it.

#include <string_view>
#include <vector>

#include "dcmesh/xehpc/roofline.hpp"

namespace dcmesh::xehpc {

/// Electronic-structure dimensions of a simulated system.
struct system_shape {
  blas::blas_int ngrid = 0;  ///< Mesh points per wave function (e.g. 96^3).
  blas::blas_int norb = 0;   ///< Total Kohn-Sham orbitals.
  blas::blas_int nocc = 0;   ///< Occupied orbitals (m of remap_occ's GEMM).
};

/// One named BLAS call within a QD step.
struct qd_blas_call {
  std::string_view site;  ///< "nlp_prop", "calc_energy", or "remap_occ".
  gemm_shape shape;
};

/// LFD precision configuration: FP64 data, or FP32 data with a compute mode.
struct lfd_precision {
  gemm_precision data = gemm_precision::fp32;
  blas::compute_mode mode = blas::compute_mode::standard;
};

/// The canonical 9 BLAS calls of one QD step for a system (complex data).
[[nodiscard]] std::vector<qd_blas_call> canonical_qd_step_calls(
    const system_shape& sys, gemm_precision precision);

/// Modeled GPU seconds spent in BLAS during one QD step.
[[nodiscard]] double model_qd_step_blas_seconds(const device_spec& spec,
                                                const calibration& cal,
                                                const system_shape& sys,
                                                lfd_precision precision);

/// Modeled GPU seconds spent in non-BLAS mesh kernels during one QD step.
[[nodiscard]] double model_qd_step_mesh_seconds(const device_spec& spec,
                                                const calibration& cal,
                                                const system_shape& sys,
                                                lfd_precision precision);

/// Modeled wall seconds for a series of QD steps (Fig 3a plots 500).
[[nodiscard]] double model_series_seconds(const device_spec& spec,
                                          const calibration& cal,
                                          const system_shape& sys,
                                          lfd_precision precision,
                                          int qd_steps = 500);

/// HBM bytes of the resident wave-function state (capacity check: the
/// 135-atom system is the largest that fits in a 64 GB stack — Table V).
[[nodiscard]] double wavefunction_bytes(const system_shape& sys,
                                        gemm_precision precision);

}  // namespace dcmesh::xehpc
