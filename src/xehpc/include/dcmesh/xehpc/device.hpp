#pragma once
// device.hpp — Intel Data Center GPU Max Series 1550 single-stack model.
//
// The paper runs on one stack of a Max 1550 ("Ponte Vecchio").  No such
// hardware is available in this reproduction, so its performance-relevant
// characteristics are captured here as an explicit analytical model: the
// Table I theoretical peaks, HBM bandwidth, and capacity.  Everything the
// performance benches report is derived from this one structure, so the
// substitution (documented in DESIGN.md) is transparent and auditable.

#include <string_view>

namespace dcmesh::xehpc {

/// Precision levels with distinct theoretical peaks (paper Table I).
enum class peak_precision { fp64, fp32, tf32, bf16, fp16, int8 };

/// Execution engine that reaches the peak for a precision.
enum class engine { vector, matrix };

/// Single-stack hardware description.  Defaults are the Max 1550 values the
/// paper quotes (Sections III-A, IV-A and Table V's 64 GB/stack caption).
struct device_spec {
  std::string_view name = "Intel Data Center GPU Max 1550 (single stack)";
  int execution_units = 448;        ///< XVEs per stack (paper Sec. IV-A).
  int xe_cores = 56;                ///< 448 EUs / 8 vector engines per core.
  int vector_engines_per_core = 8;  ///< 512-bit vector engines.
  int matrix_engines_per_core = 8;  ///< XMX systolic arrays.
  double frequency_ghz = 1.6;       ///< Peak clock (paper Sec. IV-A).

  // Theoretical peaks for a single stack, in TFLOP/s (TOP/s for INT8) —
  // paper Table I, sourced from the Hot Chips PVC disclosure [16].
  double peak_fp64_tflops = 26.0;
  double peak_fp32_tflops = 26.0;
  double peak_tf32_tflops = 209.0;
  double peak_bf16_tflops = 419.0;
  double peak_fp16_tflops = 419.0;
  double peak_int8_tops = 839.0;

  double hbm_bandwidth_tb_s = 1.6;  ///< HBM2e per stack (3.2 TB/s per GPU).
  double hbm_capacity_gb = 64.0;    ///< Per stack (Table V caption).
  double l2_cache_mb = 204.0;       ///< Per stack (408 MB per GPU).
};

/// Theoretical peak throughput for `p` in TFLOP/s (TOP/s for INT8).
[[nodiscard]] double theoretical_peak_tflops(const device_spec& spec,
                                             peak_precision p) noexcept;

/// Engine class that provides the peak for `p` (Table I "Engines" column).
[[nodiscard]] engine peak_engine(peak_precision p) noexcept;

/// Display name for a peak precision ("FP64", ..., "INT8").
[[nodiscard]] std::string_view precision_name(peak_precision p) noexcept;

/// Per-EU operations per clock implied by the Table I peak — a consistency
/// check tying the peak back to the architecture (peak = EUs * GHz * ops).
[[nodiscard]] double ops_per_clock_per_eu(const device_spec& spec,
                                          peak_precision p) noexcept;

}  // namespace dcmesh::xehpc
