#pragma once
// energy.hpp — energy-to-solution model (extension).
//
// The paper attributes the gap between observed and theoretical speedups
// partly to *power limitations* (Secs. III-B, V-C).  This extension makes
// that budget explicit: a simple phase-based power model assigns draw to
// the vector engines, the XMX arrays, and HBM streaming, and integrates it
// over the modeled execution to estimate Joules per 500-QD-step series.
// Reduced-precision modes win twice — less time *and* a cheaper engine-
// seconds mix — which is the energy argument mixed precision usually
// leans on.

#include "dcmesh/xehpc/app_model.hpp"

namespace dcmesh::xehpc {

/// Phase power draws for one Max 1550 stack (Watts).  Defaults bracket the
/// public 600 W OAM module budget split across two stacks plus host-side
/// overheads; they are model inputs, not measurements.
struct power_spec {
  double idle_w = 120.0;         ///< Stack idle / launch gaps.
  double vector_active_w = 280.0;///< Added draw at sustained vector load.
  double matrix_active_w = 330.0;///< Added draw at sustained XMX load.
  double hbm_active_w = 90.0;    ///< Added draw while streaming HBM.
};

/// Integrated energy estimate.
struct energy_estimate {
  double seconds = 0.0;
  double joules = 0.0;
  [[nodiscard]] double average_watts() const noexcept {
    return seconds > 0.0 ? joules / seconds : 0.0;
  }
  [[nodiscard]] double watt_hours() const noexcept {
    return joules / 3600.0;
  }
};

/// Energy of one modeled GEMM under `mode`.
[[nodiscard]] energy_estimate model_gemm_energy(const device_spec& spec,
                                                const calibration& cal,
                                                const power_spec& power,
                                                gemm_shape shape,
                                                blas::compute_mode mode);

/// Energy of a full series of QD steps for a system/precision (Fig 3a's
/// time axis converted to Joules).
[[nodiscard]] energy_estimate model_series_energy(
    const device_spec& spec, const calibration& cal, const power_spec& power,
    const system_shape& sys, lfd_precision precision, int qd_steps = 500);

}  // namespace dcmesh::xehpc
