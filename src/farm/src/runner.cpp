#include "dcmesh/farm/runner.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "dcmesh/blas/precision_policy.hpp"  // glob_match
#include "dcmesh/blas/verbose.hpp"           // kVerboseJsonEnvVar
#include "dcmesh/common/env.hpp"
#include "dcmesh/farm/manifest.hpp"
#include "dcmesh/farm/report.hpp"
#include "dcmesh/tune/autotuner.hpp"  // kTuneCacheEnvVar, kCalibrationSite

namespace dcmesh::farm {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw std::runtime_error("cannot create directory " + path + ": " +
                           std::strerror(errno));
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// Value of `"field":"..."` on one JSONL line (fields the runner counts
/// are plain tokens — no escapes to undo).
std::optional<std::string> string_field(std::string_view line,
                                        std::string_view field) {
  const std::string needle = "\"" + std::string(field) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(line.substr(start, end - start));
}

/// The farm-level fault plan, parsed from DCMESH_FARM_KILL.
struct kill_plan {
  std::string glob;
  double after_seconds = 0.0;
};

std::optional<kill_plan> parse_kill_plan() {
  const auto raw = env_get(kFarmKillEnvVar);
  if (!raw) return std::nullopt;
  const auto colon = raw->rfind(':');
  kill_plan plan;
  if (colon == std::string::npos) {
    plan.glob = *raw;  // bare glob: kill as soon as it is seen alive
  } else {
    plan.glob = raw->substr(0, colon);
    char* end = nullptr;
    plan.after_seconds = std::strtod(raw->c_str() + colon + 1, &end);
    if (end == raw->c_str() + colon + 1 || plan.after_seconds < 0) {
      std::fprintf(stderr,
                   "dcmesh-farm: ignoring malformed %s=\"%s\" "
                   "(expected <glob>[:<seconds>])\n",
                   std::string(kFarmKillEnvVar).c_str(), raw->c_str());
      return std::nullopt;
    }
  }
  if (plan.glob.empty()) return std::nullopt;
  return plan;
}

/// One pool slot.
struct active_worker {
  pid_t pid = -1;
  std::size_t run_index = 0;
  double started = 0.0;
  bool kill_armed = false;   ///< Matched the farm fault plan.
  bool farm_killed = false;  ///< SIGKILLed by the plan.
  bool timed_out = false;    ///< SIGKILLed by the timeout.
};

/// fork + exec one run.  Returns -1 when the fork itself fails.
pid_t spawn_run(const campaign_run& run, const std::string& run_dir,
                const runner_options& options) {
  // Fresh verbose stream per attempt: the sink appends, and a retried
  // run must not double-count its previous attempt's records.
  const std::string verbose_path = run_dir + "/verbose.jsonl";
  std::remove(verbose_path.c_str());

  const std::string deck_path = run_dir + "/deck.in";
  {
    std::ofstream deck(deck_path);
    deck << run.deck;
    if (!deck) return -1;
  }

  const pid_t pid = ::fork();
  if (pid != 0) return pid;

  // Child: plumbing only, then exec (async-signal-safe enough — the
  // parent is single-threaded while spawning).
  const int out = ::open((run_dir + "/stdout.log").c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  const int err = ::open((run_dir + "/stderr.log").c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out >= 0) ::dup2(out, STDOUT_FILENO);
  if (err >= 0) ::dup2(err, STDERR_FILENO);

  env_set(tune::kTuneCacheEnvVar, options.wisdom);
  env_set("MKL_VERBOSE", "1");
  env_set(blas::kVerboseJsonEnvVar, verbose_path);
  // The farm plan is the PARENT'S fault injector; a worker must not
  // re-trigger engine-level plans meant for the farm.
  env_unset(kFarmKillEnvVar);
  for (const auto& [key, value] : run.env) env_set(key, value);

  const char* argv[] = {options.driver.c_str(), deck_path.c_str(),
                        nullptr};
  ::execv(options.driver.c_str(), const_cast<char**>(argv));
  std::fprintf(stderr, "dcmesh-farm: cannot exec %s: %s\n",
               options.driver.c_str(), std::strerror(errno));
  ::_exit(127);
}

}  // namespace

run_counters parse_run_counters(const std::string& path) {
  run_counters counters;
  std::ifstream in(path);
  if (!in.is_open()) return counters;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++counters.gemm_records;
    if (const auto site = string_field(line, "site");
        site && *site == tune::kCalibrationSite) {
      ++counters.calibration_gemms;
    }
    if (const auto tune_tag = string_field(line, "tune")) {
      ++counters.tune[*tune_tag];
    }
    if (const auto health_tag = string_field(line, "health")) {
      ++counters.health[*health_tag];
    }
  }
  return counters;
}

campaign_result run_campaign(const std::vector<campaign_run>& runs,
                             runner_options const& options_in) {
  runner_options options = options_in;
  if (options.driver.empty() || !file_exists(options.driver)) {
    throw std::runtime_error("campaign driver not found: " +
                             options.driver);
  }
  if (options.out_dir.empty()) {
    throw std::runtime_error("campaign output directory not set");
  }
  if (options.workers < 1) options.workers = 1;
  make_dir(options.out_dir);
  make_dir(options.out_dir + "/runs");
  if (options.wisdom.empty()) {
    options.wisdom = options.out_dir + "/wisdom.jsonl";
  }
  if (options.report.empty()) {
    options.report = options.out_dir + "/BENCH_campaign.json";
  }
  const std::string manifest_path = options.out_dir + "/manifest.jsonl";

  campaign_result result;
  result.outcomes.reserve(runs.size());
  for (const auto& run : runs) {
    run_outcome outcome;
    outcome.run = run;
    outcome.status = "pending";
    result.outcomes.push_back(std::move(outcome));
  }

  // Resume: adopt every run the manifest already records as complete.
  const campaign_manifest manifest = load_manifest(manifest_path);
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const manifest_entry* prior =
        manifest.version_ok ? manifest.find(runs[i].id) : nullptr;
    if (prior != nullptr && prior->completed()) {
      auto& outcome = result.outcomes[i];
      outcome.status = prior->status;
      outcome.resumed = true;
      outcome.exit_code = prior->exit_code;
      outcome.seconds = prior->seconds;
      outcome.counters = parse_run_counters(options.out_dir + "/runs/" +
                                            runs[i].id + "/verbose.jsonl");
      ++result.completed;
      ++result.resumed;
      if (!options.quiet) {
        std::fprintf(stderr, "dcmesh-farm: %s already complete (resumed)\n",
                     runs[i].id.c_str());
      }
    } else {
      pending.push_back(i);
    }
  }

  const std::optional<kill_plan> plan = parse_kill_plan();
  bool kill_spent = false;

  // Cold scout: with an empty store, the first pending run goes alone.
  bool scouting = options.cold_scout && !pending.empty() &&
                  pending.size() > 1 && options.workers > 1 &&
                  !file_exists(options.wisdom);
  if (scouting && !options.quiet) {
    std::fprintf(stderr,
                 "dcmesh-farm: wisdom store is cold; scouting %s alone\n",
                 runs[pending.front()].id.c_str());
  }

  std::vector<active_worker> active;
  std::size_t next_pending = 0;

  const auto finish = [&](active_worker& worker, const std::string& status,
                          int exit_code) {
    auto& outcome = result.outcomes[worker.run_index];
    outcome.status = status;
    outcome.exit_code = exit_code;
    outcome.seconds = now_seconds() - worker.started;
    outcome.counters =
        parse_run_counters(options.out_dir + "/runs/" + outcome.run.id +
                           "/verbose.jsonl");
    if (status == "ok") {
      ++result.completed;
    } else {
      ++result.failed;
    }
    manifest_entry entry;
    entry.run_id = outcome.run.id;
    entry.status = status;
    entry.exit_code = exit_code;
    entry.seconds = outcome.seconds;
    entry.calibration_gemms = outcome.counters.calibration_gemms;
    if (!record_run(manifest_path, entry)) {
      std::fprintf(stderr, "dcmesh-farm: cannot write manifest %s\n",
                   manifest_path.c_str());
    }
    // Keep the on-disk report valid after every run, not just at the
    // end — this is what a killed campaign's post-mortem reads.
    (void)write_report(options.report, result, options);
    if (!options.quiet) {
      std::fprintf(stderr,
                   "dcmesh-farm: %s %s (%.2f s, %llu gemms, %llu "
                   "calibration)\n",
                   outcome.run.id.c_str(), status.c_str(), outcome.seconds,
                   static_cast<unsigned long long>(
                       outcome.counters.gemm_records),
                   static_cast<unsigned long long>(
                       outcome.counters.calibration_gemms));
    }
  };

  while (next_pending < pending.size() || !active.empty()) {
    // Fill the pool (one slot total while the scout runs).
    const std::size_t slots =
        scouting ? 1 : static_cast<std::size_t>(options.workers);
    while (next_pending < pending.size() && active.size() < slots) {
      const std::size_t run_index = pending[next_pending++];
      const campaign_run& run = runs[run_index];
      const std::string run_dir = options.out_dir + "/runs/" + run.id;
      make_dir(run_dir);
      active_worker worker;
      worker.run_index = run_index;
      worker.started = now_seconds();
      worker.kill_armed =
          plan && !kill_spent &&
          (blas::glob_match(plan->glob, run.id) ||
           blas::glob_match(plan->glob, run.tag));
      if (worker.kill_armed) kill_spent = true;  // plan fires once
      worker.pid = spawn_run(run, run_dir, options);
      if (worker.pid < 0) {
        if (scouting && run_index == pending.front()) scouting = false;
        finish(worker, "crashed", -1);
        continue;
      }
      active.push_back(worker);
    }

    // Sweep the pool.
    for (std::size_t i = 0; i < active.size();) {
      active_worker& worker = active[i];
      int status = 0;
      const pid_t got = ::waitpid(worker.pid, &status, WNOHANG);
      if (got == worker.pid) {
        if (worker.run_index == pending.front() && scouting) {
          scouting = false;  // store is warm (or the scout failed; either
                             // way the pool may fan out now)
        }
        if (WIFEXITED(status)) {
          const int code = WEXITSTATUS(status);
          finish(worker, code == 0 ? "ok" : "unrecovered", code);
        } else {
          const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
          finish(worker,
                 worker.timed_out ? "timed-out" : "crashed", -sig);
        }
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      const double alive = now_seconds() - worker.started;
      if (worker.kill_armed && !worker.farm_killed &&
          alive >= (plan ? plan->after_seconds : 0.0)) {
        worker.farm_killed = true;
        if (!options.quiet) {
          std::fprintf(stderr,
                       "dcmesh-farm: fault plan killing %s after %.2f s\n",
                       runs[worker.run_index].id.c_str(), alive);
        }
        ::kill(worker.pid, SIGKILL);
      } else if (!worker.timed_out && !worker.farm_killed &&
                 alive > options.timeout_seconds) {
        worker.timed_out = true;
        std::fprintf(stderr,
                     "dcmesh-farm: %s exceeded the %.0f s timeout; "
                     "killing it\n",
                     runs[worker.run_index].id.c_str(),
                     options.timeout_seconds);
        ::kill(worker.pid, SIGKILL);
      }
      ++i;
    }
    if (!active.empty()) ::usleep(20000);
  }

  (void)write_report(options.report, result, options);
  return result;
}

}  // namespace dcmesh::farm
