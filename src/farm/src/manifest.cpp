#include "dcmesh/farm/manifest.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "dcmesh/common/atomic_file.hpp"
#include "dcmesh/common/file_lock.hpp"
#include "dcmesh/trace/tracer.hpp"  // append_json_escaped

namespace dcmesh::farm {
namespace {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view field) {
  const std::string needle = "\"" + std::string(field) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    const char ch = line[i];
    if (ch == '"') return out;
    if (ch == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      out += (next == 'n') ? '\n' : (next == 't') ? '\t' : next;
    } else {
      out += ch;
    }
  }
  return std::nullopt;
}

std::optional<double> json_number_field(std::string_view line,
                                        std::string_view field) {
  const std::string needle = "\"" + std::string(field) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string rest(line.substr(pos + needle.size()));
  char* end = nullptr;
  const double value = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) return std::nullopt;
  return value;
}

constexpr std::string_view kCrcMarker = ",\"crc\":\"";

}  // namespace

const manifest_entry* campaign_manifest::find(
    std::string_view run_id) const {
  for (const auto& entry : entries) {
    if (entry.run_id == run_id) return &entry;
  }
  return nullptr;
}

std::string manifest_header() {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "{\"dcmesh_campaign\":%d}",
                kManifestFormatVersion);
  return buffer;
}

bool manifest_header_ok(std::string_view line) {
  const auto version = json_number_field(line, "dcmesh_campaign");
  return version && *version == kManifestFormatVersion;
}

std::string manifest_line(const manifest_entry& entry) {
  std::string out = "{\"run\":\"";
  trace::append_json_escaped(out, entry.run_id);
  out += "\",\"status\":\"";
  trace::append_json_escaped(out, entry.status);
  char buffer[128];
  std::snprintf(buffer, sizeof buffer,
                "\",\"exit\":%d,\"seconds\":%.6g,\"calibration_gemms\":%llu",
                entry.exit_code, entry.seconds,
                static_cast<unsigned long long>(entry.calibration_gemms));
  out += buffer;
  // The checksum covers everything before the crc field, so a torn tail
  // or a flipped byte anywhere in the line fails verification.
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(fnv1a(out)));
  out += kCrcMarker;
  out += buffer;
  out += "\"}";
  return out;
}

std::optional<manifest_entry> parse_manifest_line(std::string_view line) {
  const auto crc_pos = line.find(kCrcMarker);
  if (crc_pos == std::string_view::npos) return std::nullopt;
  const auto stored_crc = json_string_field(line, "crc");
  if (!stored_crc) return std::nullopt;
  char expected[32];
  std::snprintf(expected, sizeof expected, "%016llx",
                static_cast<unsigned long long>(
                    fnv1a(line.substr(0, crc_pos))));
  if (*stored_crc != expected) return std::nullopt;

  const auto run = json_string_field(line, "run");
  const auto status = json_string_field(line, "status");
  const auto exit_code = json_number_field(line, "exit");
  const auto seconds = json_number_field(line, "seconds");
  const auto calibs = json_number_field(line, "calibration_gemms");
  if (!run || !status || !exit_code || !seconds || !calibs) {
    return std::nullopt;
  }
  manifest_entry entry;
  entry.run_id = *run;
  entry.status = *status;
  entry.exit_code = static_cast<int>(*exit_code);
  entry.seconds = *seconds;
  entry.calibration_gemms = static_cast<std::uint64_t>(*calibs);
  return entry;
}

campaign_manifest load_manifest(const std::string& path) {
  campaign_manifest result;
  if (path.empty()) return result;
  std::ifstream in(path);
  if (!in.is_open()) return result;
  result.existed = true;
  std::string line;
  if (!std::getline(in, line) || !manifest_header_ok(line)) {
    result.version_ok = false;
    return result;
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto entry = parse_manifest_line(line);
    if (!entry) {
      ++result.rejected_lines;
      continue;
    }
    // Last entry per run id wins: a retried run supersedes its failure.
    bool replaced = false;
    for (auto& existing : result.entries) {
      if (existing.run_id == entry->run_id) {
        existing = std::move(*entry);
        replaced = true;
        break;
      }
    }
    if (!replaced) result.entries.push_back(std::move(*entry));
  }
  return result;
}

bool record_run(const std::string& path, const manifest_entry& entry) {
  if (path.empty()) return false;
  // The runner parent is normally the sole writer, but the lock makes
  // two campaigns pointed at one output directory merely slow instead
  // of corrupting each other.
  const file_lock lock(path);
  campaign_manifest manifest = load_manifest(path);
  if (!manifest.version_ok) {
    manifest.entries.clear();  // foreign/corrupt: rebuild
  }
  bool replaced = false;
  for (auto& existing : manifest.entries) {
    if (existing.run_id == entry.run_id) {
      existing = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) manifest.entries.push_back(entry);
  return atomic_write_file(path, [&](std::ostream& os) {
    os << manifest_header() << '\n';
    for (const auto& e : manifest.entries) {
      os << manifest_line(e) << '\n';
    }
    return static_cast<bool>(os);
  });
}

}  // namespace dcmesh::farm
