#include "dcmesh/farm/report.hpp"

#include <cstdio>
#include <sstream>

#include "dcmesh/common/atomic_file.hpp"
#include "dcmesh/trace/tracer.hpp"  // append_json_escaped

namespace dcmesh::farm {
namespace {

void append_quoted(std::string& out, std::string_view value) {
  out += '"';
  trace::append_json_escaped(out, value);
  out += '"';
}

void append_histogram(std::string& out, const char* name,
                      const std::map<std::string, std::uint64_t>& hist) {
  out += "\"";
  out += name;
  out += "\":{";
  bool first = true;
  for (const auto& [key, count] : hist) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, key);
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, ":%llu",
                  static_cast<unsigned long long>(count));
    out += buffer;
  }
  out += '}';
}

}  // namespace

std::string report_json(const campaign_result& result,
                        const runner_options& options) {
  std::string out = "{\n  \"dcmesh_campaign_report\": 1,\n  \"driver\": ";
  append_quoted(out, options.driver);
  out += ",\n  \"wisdom\": ";
  append_quoted(out, options.wisdom);
  char buffer[160];
  std::size_t pending = 0;
  for (const auto& outcome : result.outcomes) {
    if (outcome.status == "pending") ++pending;
  }
  std::snprintf(buffer, sizeof buffer,
                ",\n  \"workers\": %d,\n  \"total\": %zu,\n"
                "  \"completed\": %zu,\n  \"failed\": %zu,\n"
                "  \"resumed\": %zu,\n  \"pending\": %zu,\n  \"runs\": [\n",
                options.workers, result.outcomes.size(), result.completed,
                result.failed, result.resumed, pending);
  out += buffer;

  bool first = true;
  for (const auto& outcome : result.outcomes) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"id\": ";
    append_quoted(out, outcome.run.id);
    out += ", \"tag\": ";
    append_quoted(out, outcome.run.tag);
    out += ", \"status\": ";
    append_quoted(out, outcome.status);
    std::snprintf(buffer, sizeof buffer,
                  ", \"resumed\": %s, \"exit\": %d, \"seconds\": %.6g, "
                  "\"gemm_records\": %llu, \"calibration_gemms\": %llu, ",
                  outcome.resumed ? "true" : "false", outcome.exit_code,
                  outcome.seconds,
                  static_cast<unsigned long long>(
                      outcome.counters.gemm_records),
                  static_cast<unsigned long long>(
                      outcome.counters.calibration_gemms));
    out += buffer;
    append_histogram(out, "tune", outcome.counters.tune);
    out += ", ";
    append_histogram(out, "health", outcome.counters.health);
    out += '}';
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_report(const std::string& path, const campaign_result& result,
                  const runner_options& options) {
  return atomic_write_file(path, [&](std::ostream& os) {
    os << report_json(result, options);
    return static_cast<bool>(os);
  });
}

}  // namespace dcmesh::farm
