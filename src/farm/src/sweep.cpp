#include "dcmesh/farm/sweep.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dcmesh/common/env.hpp"
#include "dcmesh/core/presets.hpp"

namespace dcmesh::farm {
namespace {

std::vector<std::string> split_values(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string_view::npos ? text.size() : comma;
    const std::string value{trim(text.substr(start, end - start))};
    if (!value.empty()) out.push_back(value);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return out;
}

core::run_config preset_by_name(const std::string& name) {
  for (const core::paper_system system : core::all_presets()) {
    if (core::name(system) == name) return core::preset(system);
  }
  throw std::runtime_error("unknown preset '" + name + "'");
}

/// Env axes are exactly the engine's runtime knobs: anything with the
/// reserved prefixes.  Everything else must parse as a run-deck key.
bool is_env_key(std::string_view upper_key) {
  return upper_key.rfind("DCMESH_", 0) == 0 ||
         upper_key.rfind("MKL_", 0) == 0;
}

}  // namespace

sweep_spec parse_sweep(std::istream& in) {
  sweep_spec spec;
  spec.base = preset_by_name(spec.base_name);
  std::string line;
  int line_number = 0;
  const auto fail = [&line_number](const std::string& what) {
    throw std::runtime_error("sweep line " + std::to_string(line_number) +
                             ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) fail("expected 'key = value'");
    const std::string raw_key{trim(trimmed.substr(0, eq))};
    const std::string upper_key = to_upper(raw_key);
    const std::vector<std::string> values =
        split_values(trimmed.substr(eq + 1));
    if (values.empty()) fail("missing value for " + raw_key);

    if (upper_key == "PRESET") {
      if (values.size() != 1) fail("preset takes one value");
      try {
        spec.base = preset_by_name(values.front());
      } catch (const std::exception& error) {
        fail(error.what());
      }
      spec.base_name = values.front();
    } else if (upper_key == "DECK") {
      if (values.size() != 1) fail("deck takes one value");
      try {
        spec.base = core::parse_config_file(values.front());
      } catch (const std::exception& error) {
        fail(error.what());
      }
      spec.base_name = values.front();
    } else if (upper_key == "WORKERS") {
      if (values.size() != 1) fail("workers takes one value");
      spec.workers = std::stoi(values.front());
      if (spec.workers < 1) fail("workers must be >= 1");
    } else if (upper_key == "TIMEOUT") {
      if (values.size() != 1) fail("timeout takes one value");
      spec.timeout_seconds = std::stod(values.front());
      if (!(spec.timeout_seconds > 0)) fail("timeout must be > 0");
    } else {
      sweep_axis axis;
      axis.is_env = is_env_key(upper_key);
      // Env vars keep their exact case; deck keys are normalized lower
      // so the tag reads like a deck line.
      axis.key = axis.is_env ? raw_key : to_lower(upper_key);
      axis.values = values;
      spec.axes.push_back(std::move(axis));
    }
  }
  return spec;
}

sweep_spec parse_sweep_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open sweep deck: " + path);
  return parse_sweep(in);
}

void add_axis(sweep_spec& spec, const std::string& assignment) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::runtime_error("--set expects KEY=value[,value...]: " +
                             assignment);
  }
  sweep_axis axis;
  const std::string raw_key{trim(std::string_view(assignment).substr(0, eq))};
  const std::string upper_key = to_upper(raw_key);
  axis.is_env = is_env_key(upper_key);
  axis.key = axis.is_env ? raw_key : to_lower(upper_key);
  axis.values = split_values(std::string_view(assignment).substr(eq + 1));
  if (axis.values.empty()) {
    throw std::runtime_error("--set " + raw_key + ": no values");
  }
  spec.axes.push_back(std::move(axis));
}

std::vector<campaign_run> expand(const sweep_spec& spec) {
  std::size_t total = 1;
  for (const auto& axis : spec.axes) total *= axis.values.size();

  const std::string base_deck = core::to_deck(spec.base);
  std::vector<campaign_run> runs;
  runs.reserve(total);
  for (std::size_t cell = 0; cell < total; ++cell) {
    campaign_run run;
    char id[32];
    std::snprintf(id, sizeof id, "run-%04zu", cell);
    run.id = id;
    run.deck = base_deck;

    // Mixed-radix decode, first axis slowest: the matrix enumerates in
    // the reader's declaration order.
    std::size_t rest = cell, radix = total;
    for (const auto& axis : spec.axes) {
      radix /= axis.values.size();
      const std::string& value = axis.values[rest / radix];
      rest %= radix;
      if (!run.tag.empty()) run.tag += ',';
      run.tag += axis.key + "=" + value;
      if (axis.is_env) {
        run.env.emplace_back(axis.key, value);
      } else {
        // Deck keys are last-wins, so appending overrides the base.
        run.deck += axis.key + " = " + value + '\n';
      }
    }

    // Fail at expansion, not mid-campaign: every cell's deck must parse
    // and validate.
    try {
      std::istringstream check(run.deck);
      (void)core::parse_config(check);
    } catch (const std::exception& error) {
      throw std::runtime_error(run.id + " (" + run.tag +
                               "): " + error.what());
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace dcmesh::farm
