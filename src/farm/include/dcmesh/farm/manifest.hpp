#pragma once
// manifest.hpp — the campaign manifest: which runs already finished.
//
// A campaign killed at run 37 of 200 must restart at run 38, not run 0.
// The manifest is the durable record that makes that possible: one JSONL
// file beside the campaign report, one line per finished run, rewritten
// atomically (temp + fsync + rename) under the same advisory-flock
// discipline as the wisdom store, with every line carrying an FNV-1a-64
// checksum of its own content — the checkpoint-v2 discipline, applied
// per line so a torn or hand-mangled line is dropped individually
// instead of poisoning the whole campaign.
//
// Resume semantics: on restart the runner loads the manifest and skips
// every run whose latest entry says "ok"; failed, crashed, and timed-out
// runs are retried (their entry is superseded by the retry's outcome —
// last entry per run id wins).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dcmesh::farm {

/// Bump when the manifest line layout changes incompatibly.
inline constexpr int kManifestFormatVersion = 1;

/// One finished run.
struct manifest_entry {
  std::string run_id;   ///< Stable id from the sweep expansion.
  std::string status;   ///< "ok" | "unrecovered" | "crashed" | "timed-out".
  int exit_code = 0;    ///< Exit status, or -signal when killed.
  double seconds = 0.0; ///< Wall time of the attempt.
  std::uint64_t calibration_gemms = 0;  ///< Calibration GEMMs observed.

  [[nodiscard]] bool completed() const noexcept { return status == "ok"; }
};

/// Result of loading a manifest.
struct campaign_manifest {
  std::vector<manifest_entry> entries;  ///< Latest entry per run id.
  bool existed = false;
  bool version_ok = true;  ///< Header matched (false = foreign/corrupt).
  std::size_t rejected_lines = 0;  ///< Torn/checksum-failed lines dropped.

  /// Latest entry for `run_id`, or nullptr.
  [[nodiscard]] const manifest_entry* find(std::string_view run_id) const;
};

/// The header line a valid manifest must start with.
[[nodiscard]] std::string manifest_header();
[[nodiscard]] bool manifest_header_ok(std::string_view line);

/// One checksummed JSONL line for `entry` (no trailing newline).
[[nodiscard]] std::string manifest_line(const manifest_entry& entry);

/// Parse and checksum-verify one line; nullopt on any mismatch.
[[nodiscard]] std::optional<manifest_entry> parse_manifest_line(
    std::string_view line);

/// Load `path`; never throws.  Missing file = {existed=false}.
[[nodiscard]] campaign_manifest load_manifest(const std::string& path);

/// Record one finished run: read-modify-write under the manifest's
/// flock, replacing any previous entry for the same run id, finished by
/// an atomic rewrite.  False on I/O failure.
bool record_run(const std::string& path, const manifest_entry& entry);

}  // namespace dcmesh::farm
