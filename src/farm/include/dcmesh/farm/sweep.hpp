#pragma once
// sweep.hpp — campaign sweep specification and run-matrix expansion.
//
// The paper's central experiment is a sweep: the same DCMESH system run
// across BLAS precision configurations and compared.  A sweep deck uses
// the familiar "key = value" deck syntax with one extension — a value
// may be a comma-separated list, which makes the key an AXIS:
//
//   preset = tiny
//   mesh_n = 8, 12
//   pulse_e0 = 0.05, 0.1
//   MKL_BLAS_COMPUTE_MODE = STANDARD, FLOAT_TO_BF16X2
//
// expands to the 2x2x2 cartesian product: eight runs, each a complete
// run deck plus a per-run environment.  UPPERCASE keys with a DCMESH_ /
// MKL_ prefix sweep environment variables (compute mode, policy, fault
// plan, sched mode — the knobs that are deliberately NOT deck keys, per
// the paper's no-source-change property); every other key must be a
// valid run-deck key and sweeps the deck.  Single-valued keys simply
// pin that knob for every run.
//
// Expansion is deterministic (axis declaration order, first axis slowest)
// and run ids are stable across invocations — the campaign manifest
// keys on them to skip completed runs on resume.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "dcmesh/core/config.hpp"

namespace dcmesh::farm {

/// One sweep axis: a deck key or an environment variable, with the
/// values it takes.
struct sweep_axis {
  std::string key;     ///< Deck key (lower-case) or env var (UPPER_CASE).
  bool is_env = false; ///< True = per-run environment, not deck text.
  std::vector<std::string> values;
};

/// A parsed sweep deck.
struct sweep_spec {
  core::run_config base = {};  ///< Base configuration axes override.
  std::string base_name = "tiny";  ///< Preset name or deck path (report).
  std::vector<sweep_axis> axes;
  int workers = 0;             ///< `workers =` key (0 = caller decides).
  double timeout_seconds = 0;  ///< `timeout =` key (0 = caller decides).
};

/// One cell of the expanded run matrix.
struct campaign_run {
  std::string id;    ///< Stable id, "run-0000" ... (manifest key).
  std::string tag;   ///< Human axis assignment, "mesh_n=8,mode=...".
  std::string deck;  ///< Complete run-deck text for this cell.
  std::vector<std::pair<std::string, std::string>> env;  ///< Per-run env.
};

/// Parse a sweep deck.  Malformed lines, unknown deck keys, and invalid
/// base configs throw std::runtime_error naming the line.
[[nodiscard]] sweep_spec parse_sweep(std::istream& in);

/// Parse a sweep deck from a file path.
[[nodiscard]] sweep_spec parse_sweep_file(const std::string& path);

/// Add one axis from a "KEY=v1,v2,..." CLI argument (--set).  Throws
/// std::runtime_error on malformed input.
void add_axis(sweep_spec& spec, const std::string& assignment);

/// Expand the cartesian product into the run matrix.  Every cell's deck
/// is round-tripped through the run-deck parser, so an invalid
/// combination fails here, before any process is spawned.
[[nodiscard]] std::vector<campaign_run> expand(const sweep_spec& spec);

}  // namespace dcmesh::farm
