#pragma once
// report.hpp — the aggregate campaign report (BENCH_campaign.json).
//
// One JSON document summarizing the whole campaign: per-run status,
// wall time, resume markers, and the per-run verbose-stream counters
// (calibration GEMMs, tune= provenance histogram, health= verdicts).
// The runner rewrites it atomically after every finished run, so the
// file is always complete and parseable — a campaign killed midway
// leaves a truthful partial report, and the resumed invocation's final
// rewrite covers every run including the ones it skipped.

#include <string>

#include "dcmesh/farm/runner.hpp"

namespace dcmesh::farm {

/// Render the report document (pretty-printed, stable field order).
[[nodiscard]] std::string report_json(const campaign_result& result,
                                      const runner_options& options);

/// Atomically (re)write the report.  False on I/O failure.
bool write_report(const std::string& path, const campaign_result& result,
                  const runner_options& options);

}  // namespace dcmesh::farm
