#pragma once
// runner.hpp — the campaign worker pool: fork/exec sharding with per-run
// timeouts, a shared wisdom store, and manifest-driven resume.
//
// run_campaign() takes the expanded run matrix and drives it to
// completion over a bounded pool of worker processes.  Each run becomes
// one fork/exec of the driver binary (dcehd or compatible: argv[1] is a
// run-deck path, exit 0 = success) with its own output directory
// (runs/<id>/ under the campaign directory: deck.in, stdout.log,
// stderr.log, verbose.jsonl) and its own environment — the run's sweep
// env axes, plus DCMESH_TUNE_CACHE pointed at the campaign's ONE shared
// wisdom store and MKL_VERBOSE_JSON at the run's private JSONL stream.
//
// Worker lifecycle per run:
//   spawn    fork; child redirects stdout/stderr, applies env, execs
//   poll     parent sweeps the pool (waitpid WNOHANG, ~20 ms cadence)
//   reap     exit 0 -> "ok"; nonzero exit -> "unrecovered" (the driver
//            exits 1 when resilience gives up); killed by a signal ->
//            "crashed"; past the per-run timeout -> SIGKILL +
//            "timed-out"
//   record   the verbose stream is folded into per-run counters
//            (calibration GEMMs, tune= and health= histograms), the
//            manifest gains a checksummed line, and the aggregate
//            report is atomically rewritten — after EVERY run, so a
//            killed campaign leaves a valid partial report behind.
//
// Cold scout: when the wisdom store does not exist yet, the first run
// executes alone before the pool fans out.  The store stays correct
// without it (misses calibrate under the store flock), but the scout
// converts N workers serializing on one lock into one worker warming
// the store for all — the "pay cold-start once" fast path.
//
// DCMESH_FARM_KILL=<glob>:<seconds> is the farm-level fault plan: the
// parent SIGKILLs the first run whose id or tag matches the glob after
// it has been alive that long, recording "crashed".  This is how tests
// and CI rehearse the kill-one-worker-and-resume story
// deterministically; it is intentionally NOT inherited by the retry
// after resume (the env var simply isn't set on the second invocation).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dcmesh/farm/sweep.hpp"

namespace dcmesh::farm {

/// Farm-level fault plan: kill the first matching run (see above).
inline constexpr std::string_view kFarmKillEnvVar = "DCMESH_FARM_KILL";

struct runner_options {
  std::string driver;        ///< Driver binary (dcehd-compatible).
  std::string out_dir;       ///< Campaign directory (created if absent).
  std::string wisdom;        ///< Shared store ("" = out_dir/wisdom.jsonl).
  std::string report;        ///< Report ("" = out_dir/BENCH_campaign.json).
  int workers = 2;           ///< Worker pool bound (>= 1).
  double timeout_seconds = 300.0;  ///< Per-run wall-time budget.
  bool cold_scout = true;    ///< First run alone when the store is cold.
  bool quiet = false;        ///< Suppress per-run progress on stderr.
};

/// Counters folded out of one run's MKL_VERBOSE_JSON stream.
struct run_counters {
  std::uint64_t gemm_records = 0;       ///< Verbose records seen.
  std::uint64_t calibration_gemms = 0;  ///< site == "tune/calibrate".
  std::map<std::string, std::uint64_t> tune;    ///< tune= provenance.
  std::map<std::string, std::uint64_t> health;  ///< health= verdicts.
};

/// One run's outcome in this invocation.
struct run_outcome {
  campaign_run run;
  std::string status;   ///< "ok" | "unrecovered" | "crashed" | "timed-out".
  bool resumed = false; ///< Completed by a PREVIOUS invocation; skipped.
  int exit_code = 0;    ///< Exit status, or -signal when killed.
  double seconds = 0.0;
  run_counters counters;
};

struct campaign_result {
  std::vector<run_outcome> outcomes;  ///< Matrix order.
  std::size_t completed = 0;  ///< status == "ok", including resumed.
  std::size_t failed = 0;
  std::size_t resumed = 0;

  [[nodiscard]] bool ok() const noexcept { return failed == 0; }
};

/// Parse one run's verbose JSONL stream into counters (missing file =
/// all zeros; exposed for tests and the report's resume path).
[[nodiscard]] run_counters parse_run_counters(const std::string& path);

/// Drive the matrix to completion.  Never throws on run failures (they
/// land in the result); throws std::runtime_error only when the campaign
/// itself cannot be set up (unusable output directory or driver).
campaign_result run_campaign(const std::vector<campaign_run>& runs,
                             const runner_options& options);

}  // namespace dcmesh::farm
