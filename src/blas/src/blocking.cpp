#include "blocking.hpp"

#include <algorithm>

namespace dcmesh::blas::detail {
namespace {

thread_local gemm_blocking t_override{0, 0};
thread_local bool t_override_active = false;

[[nodiscard]] blas_int round_to_quantum(blas_int value, blas_int quantum,
                                        blas_int max) noexcept {
  // Round to the NEAREST multiple (ties up) so a tuned value round-trips
  // through legalization unchanged and a probe grid stays monotone.
  const blas_int units =
      std::max<blas_int>(1, (value + quantum / 2) / quantum);
  return std::min<blas_int>(units * quantum, (max / quantum) * quantum);
}

}  // namespace

blas_int blocking_row_quantum(kernel_isa isa) noexcept {
  // lcm over {f32, f64, cf32, cf64} MR per tier.
  return isa == kernel_isa::avx512 ? 56 : 12;
}

blas_int blocking_col_quantum(kernel_isa isa) noexcept {
  // lcm over {f32, f64, cf32, cf64} NR per tier.
  return isa == kernel_isa::avx512 ? 32 : 16;
}

gemm_blocking default_blocking(kernel_isa isa) noexcept {
  // scalar/avx2 keep the historical kBlockM=72/kBlockN=512; the avx512
  // tiles are 14 rows tall, so MC grows to the nearest taller quantum
  // multiple (2 x 56 = 112 rows, 8 f32 strips per block).
  return isa == kernel_isa::avx512 ? gemm_blocking{112, 512}
                                   : gemm_blocking{72, 512};
}

gemm_blocking legalize_blocking(kernel_isa isa, blas_int mc,
                                blas_int nc) noexcept {
  const gemm_blocking dflt = default_blocking(isa);
  if (mc <= 0) mc = dflt.mc;
  if (nc <= 0) nc = dflt.nc;
  return {round_to_quantum(mc, blocking_row_quantum(isa), kMaxBlockM),
          round_to_quantum(nc, blocking_col_quantum(isa), kMaxBlockN)};
}

gemm_blocking effective_blocking() noexcept {
  if (t_override_active) return t_override;
  return default_blocking(active_kernel_isa());
}

scoped_blocking::scoped_blocking(blas_int mc, blas_int nc) noexcept {
  if (mc <= 0 && nc <= 0) return;
  prev_ = t_override;
  prev_active_ = t_override_active;
  t_override = legalize_blocking(active_kernel_isa(), mc, nc);
  t_override_active = true;
  engaged_ = true;
}

scoped_blocking::~scoped_blocking() {
  if (!engaged_) return;
  t_override = prev_;
  t_override_active = prev_active_;
}

}  // namespace dcmesh::blas::detail
