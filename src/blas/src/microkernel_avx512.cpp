// microkernel_avx512.cpp — explicit AVX-512 register-tile microkernels.
//
// This translation unit alone is compiled with -mavx512f -mavx512bw
// -mavx512dq -mavx512vl (see src/blas/CMakeLists.txt); it is only
// dispatched to after a runtime __builtin_cpu_supports check, so the
// rest of the library keeps the baseline ISA.  Both kernels perform, per
// C element, exactly one fmadd per packed k step with p ascending — the
// same operation order as the scalar template and the AVX2 kernels, so
// swapping tiers relocates which SIMD lane an element lands in but never
// reassociates its accumulation chain.
//
// Accumulator budget (32 ZMM registers):
//   float  14x32: 28 accumulators + 2 B vectors + 1 A broadcast = 31.
//   double  8x16: 16 accumulators + 2 B vectors + 1 A broadcast = 19.
//
// The row bodies are macro-expanded: 28 named accumulators keep the
// register allocator honest (a [14][2] array spills on GCC), and the
// load/fma/store pattern is identical for every row.

#include "microkernel.hpp"

#if defined(DCMESH_HAVE_AVX512_KERNELS)

#include <immintrin.h>

namespace dcmesh::blas::detail {

// 14 rows x 32 columns, two ZMM vectors per row.
#define DCMESH_AVX512_F32_ROWS(X) \
  X(0) X(1) X(2) X(3) X(4) X(5) X(6) X(7) X(8) X(9) X(10) X(11) X(12) X(13)

void micro_kernel_avx512_f32(blas_int kc, const float* ap, const float* bp,
                             float* acc) noexcept {
#define DCMESH_LOAD(i)                                  \
  __m512 c##i##0 = _mm512_loadu_ps(acc + (i) * 32);     \
  __m512 c##i##1 = _mm512_loadu_ps(acc + (i) * 32 + 16);
  DCMESH_AVX512_F32_ROWS(DCMESH_LOAD)
#undef DCMESH_LOAD
  for (blas_int p = 0; p < kc; ++p) {
    const float* a = ap + p * 14;
    const __m512 b0 = _mm512_loadu_ps(bp + p * 32);
    const __m512 b1 = _mm512_loadu_ps(bp + p * 32 + 16);
#define DCMESH_FMA(i)                                \
  {                                                  \
    const __m512 ai = _mm512_set1_ps(a[i]);          \
    c##i##0 = _mm512_fmadd_ps(ai, b0, c##i##0);      \
    c##i##1 = _mm512_fmadd_ps(ai, b1, c##i##1);      \
  }
    DCMESH_AVX512_F32_ROWS(DCMESH_FMA)
#undef DCMESH_FMA
  }
#define DCMESH_STORE(i)                              \
  _mm512_storeu_ps(acc + (i) * 32, c##i##0);         \
  _mm512_storeu_ps(acc + (i) * 32 + 16, c##i##1);
  DCMESH_AVX512_F32_ROWS(DCMESH_STORE)
#undef DCMESH_STORE
}

#undef DCMESH_AVX512_F32_ROWS

// 8 rows x 16 columns, two ZMM vectors per row.
#define DCMESH_AVX512_F64_ROWS(X) X(0) X(1) X(2) X(3) X(4) X(5) X(6) X(7)

void micro_kernel_avx512_f64(blas_int kc, const double* ap,
                             const double* bp, double* acc) noexcept {
#define DCMESH_LOAD(i)                                  \
  __m512d c##i##0 = _mm512_loadu_pd(acc + (i) * 16);    \
  __m512d c##i##1 = _mm512_loadu_pd(acc + (i) * 16 + 8);
  DCMESH_AVX512_F64_ROWS(DCMESH_LOAD)
#undef DCMESH_LOAD
  for (blas_int p = 0; p < kc; ++p) {
    const double* a = ap + p * 8;
    const __m512d b0 = _mm512_loadu_pd(bp + p * 16);
    const __m512d b1 = _mm512_loadu_pd(bp + p * 16 + 8);
#define DCMESH_FMA(i)                                \
  {                                                  \
    const __m512d ai = _mm512_set1_pd(a[i]);         \
    c##i##0 = _mm512_fmadd_pd(ai, b0, c##i##0);      \
    c##i##1 = _mm512_fmadd_pd(ai, b1, c##i##1);      \
  }
    DCMESH_AVX512_F64_ROWS(DCMESH_FMA)
#undef DCMESH_FMA
  }
#define DCMESH_STORE(i)                              \
  _mm512_storeu_pd(acc + (i) * 16, c##i##0);         \
  _mm512_storeu_pd(acc + (i) * 16 + 8, c##i##1);
  DCMESH_AVX512_F64_ROWS(DCMESH_STORE)
#undef DCMESH_STORE
}

#undef DCMESH_AVX512_F64_ROWS

}  // namespace dcmesh::blas::detail

#endif  // DCMESH_HAVE_AVX512_KERNELS
