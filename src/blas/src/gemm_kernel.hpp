#pragma once
// gemm_kernel.hpp — internal cache-blocked GEMM used by every minimkl path.
//
// Classic three-level blocking (Goto-style): B is packed into NR-wide
// column strips per (jc, pc) panel, A into MR-tall row strips per (ic, pc)
// block, and a register-tiled microkernel (microkernel.hpp; explicit
// AVX2+FMA for float/double behind runtime dispatch, scalar otherwise)
// accumulates an MR x NR tile over the packed K dimension.  Edge tiles are
// zero-padded in the packed buffers so the microkernel never branches.
// Packed panels live in the per-thread pack_arena — the hot path performs
// no heap allocation after warmup.  The ic loop is OpenMP-parallel
// (dynamic schedule past a crossover); large B panels are packed in
// parallel as well.

#include <algorithm>
#include <cassert>
#include <complex>
#include <memory>
#include <stdexcept>
#include <type_traits>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/sched/config.hpp"
#include "blocking.hpp"
#include "microkernel.hpp"
#include "pack_arena.hpp"
#include "prepack_cache.hpp"

namespace dcmesh::blas::detail {

/// The K cache-block (elements).  kBlockK partitions the accumulation —
/// each C element is produced by one microkernel call per kBlockK slice,
/// in pc-ascending order — so it is part of the golden-trajectory
/// numerical contract and stays a compile-time constant.  MC and NC only
/// partition the *output*: any legal choice yields bit-identical C, so
/// they are runtime values resolved per call through blocking.hpp
/// (tier defaults, or a tuned override planned by the dispatcher).
inline constexpr blas_int kBlockK = 256;

/// Parallelism crossovers, per ISA tier (measured Release,
/// -march=native, see DESIGN §9).  Handing a pack to the worker team —
/// the shared pool under DCMESH_SCHED=pool, an OpenMP fork otherwise —
/// costs on the order of a microsecond; a panel is only worth sharing
/// once its serial pack time clears that by a healthy margin.  The
/// avx512 tier's ZMM pack loop moves roughly twice the bytes per cycle,
/// so its break-even sits at twice the elements.  Dynamic scheduling of
/// the ic sweep pays off once there are enough blocks for imbalance
/// (edge blocks, busy cores) to matter; the avx512 tier's taller MC
/// means fewer, longer blocks, so imbalance bites at a lower count.
[[nodiscard]] inline blas_int pack_parallel_min_elems(
    kernel_isa isa) noexcept {
  return isa == kernel_isa::avx512 ? 65536 : 32768;
}
[[nodiscard]] inline blas_int ic_dynamic_crossover(kernel_isa isa) noexcept {
  return isa == kernel_isa::avx512 ? 6 : 8;
}

template <typename T>
[[nodiscard]] constexpr T conj_if(T value, bool do_conj) noexcept {
  if constexpr (std::is_floating_point_v<T>) {
    (void)do_conj;
    return value;
  } else {
    return do_conj ? std::conj(value) : value;
  }
}

/// Element (r, c) of op(X) where X is column-major with leading dim ld.
template <typename T>
[[nodiscard]] inline T op_element(const T* x, blas_int ld, transpose op,
                                  blas_int r, blas_int c) noexcept {
  if (op == transpose::none) return x[r + c * ld];
  return conj_if(x[c + r * ld], op == transpose::conj_trans);
}

/// Scale C by beta in place (beta == 0 overwrites, killing NaNs/Infs, as
/// BLAS requires).
template <typename T>
void scale_c(blas_int m, blas_int n, T beta, T* c, blas_int ldc) {
  if (beta == T(1)) return;
  if (beta == T(0)) {
    for (blas_int j = 0; j < n; ++j) {
      std::fill_n(c + j * ldc, m, T(0));
    }
    return;
  }
  for (blas_int j = 0; j < n; ++j) {
    T* col = c + j * ldc;
    for (blas_int i = 0; i < m; ++i) col[i] *= beta;
  }
}

/// Pack an mc x kc block of op(A) into MR-tall strips, zero-padded to a
/// multiple of MR rows.  Strip layout: strip s holds kc "columns" of MR
/// contiguous elements.  Every packed element is written, so arena memory
/// needs no pre-zeroing.  `mr` comes from the resolved kernel_desc — the
/// avx512 tier packs taller strips than the baseline micro_tile.
template <typename T>
void pack_a(const T* a, blas_int lda, transpose op, blas_int row0,
            blas_int col0, blas_int mc, blas_int kc, T* packed, int mr) {
  const blas_int strips = (mc + mr - 1) / mr;
  for (blas_int s = 0; s < strips; ++s) {
    T* dst = packed + s * (kc * mr);
    const blas_int i0 = s * mr;
    const int rows = static_cast<int>(std::min<blas_int>(mr, mc - i0));
    for (blas_int p = 0; p < kc; ++p) {
      for (int i = 0; i < rows; ++i) {
        dst[p * mr + i] = op_element(a, lda, op, row0 + i0 + i, col0 + p);
      }
      for (int i = rows; i < mr; ++i) dst[p * mr + i] = T(0);
    }
  }
}

/// Pack a kc x nc panel of op(B) into NR-wide strips, zero-padded to a
/// multiple of NR columns.  With `parallel`, strips are packed by the
/// scheduler's worker team — the shared pool under DCMESH_SCHED=pool,
/// an OpenMP team otherwise — once the panel clears the fork-cost
/// crossover (strips are disjoint, so the packed bytes are identical no
/// matter which thread packs which strip).
template <typename T>
void pack_b(const T* b, blas_int ldb, transpose op, blas_int row0,
            blas_int col0, blas_int kc, blas_int nc, T* packed, int nr,
            bool parallel = false) {
  const blas_int strips = (nc + nr - 1) / nr;
  const auto pack_strip = [&](blas_int s) {
    T* dst = packed + s * (kc * nr);
    const blas_int j0 = s * nr;
    const int cols = static_cast<int>(std::min<blas_int>(nr, nc - j0));
    for (blas_int p = 0; p < kc; ++p) {
      for (int j = 0; j < cols; ++j) {
        dst[p * nr + j] = op_element(b, ldb, op, row0 + p, col0 + j0 + j);
      }
      for (int j = cols; j < nr; ++j) dst[p * nr + j] = T(0);
    }
  };
  if (parallel &&
      kc * nc >= pack_parallel_min_elems(active_kernel_isa()) &&
      strips > 1) {
    sched::team_parallel_for(strips, /*dynamic_chunks=*/false,
                             [&](long s) { pack_strip(s); });
  } else {
    for (blas_int s = 0; s < strips; ++s) pack_strip(s);
  }
}

/// Add alpha * acc (an MR x NR tile, rows x cols valid) into C at (i0, j0).
/// Shared by the standard and fused split paths — the epilogue is part of
/// the bit-level contract (one rounding per C update).
template <typename T>
inline void accumulate_tile(blas_int m, blas_int n, T alpha, const T* acc,
                            blas_int i0, blas_int j0, int rows, int cols,
                            T* c, blas_int ldc, int nr) noexcept {
  (void)m;
  (void)n;
  for (int j = 0; j < cols; ++j) {
    T* col = c + i0 + (j0 + j) * ldc;
    for (int i = 0; i < rows; ++i) {
      col[i] += alpha * acc[i * nr + j];
    }
  }
}

/// Validate the standard GEMM argument contract; throws std::invalid_argument
/// on a malformed call (negative dims, too-small leading dimensions).
/// A and B may be null when they will not be referenced (k == 0 or
/// alpha == 0), per the BLAS contract — pass needs_ab accordingly.
template <typename T>
void validate_gemm_args(transpose transa, transpose transb, blas_int m,
                        blas_int n, blas_int k, const T* a, blas_int lda,
                        const T* b, blas_int ldb, const T* c, blas_int ldc,
                        bool needs_ab = true) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("gemm: negative dimension");
  }
  const blas_int rows_a = transa == transpose::none ? m : k;
  const blas_int rows_b = transb == transpose::none ? k : n;
  if (lda < std::max<blas_int>(1, rows_a)) {
    throw std::invalid_argument("gemm: lda too small");
  }
  if (ldb < std::max<blas_int>(1, rows_b)) {
    throw std::invalid_argument("gemm: ldb too small");
  }
  if (ldc < std::max<blas_int>(1, m)) {
    throw std::invalid_argument("gemm: ldc too small");
  }
  if (m != 0 && n != 0) {
    if (c == nullptr) throw std::invalid_argument("gemm: null C");
    if (needs_ab && k != 0 && (a == nullptr || b == nullptr)) {
      throw std::invalid_argument("gemm: null A or B");
    }
  }
}

/// The blocked GEMM core: C += alpha * op(A) * op(B), assuming C has already
/// been scaled by beta.  Never reads the compute mode — every mode's
/// component products funnel through this routine (the fused split engine
/// in gemm_real.cpp shares its packing layout, microkernel, and epilogue).
template <typename T>
void gemm_blocked_accumulate(transpose transa, transpose transb, blas_int m,
                             blas_int n, blas_int k, T alpha, const T* a,
                             blas_int lda, const T* b, blas_int ldb, T* c,
                             blas_int ldc) {
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;

  // Resolved ONCE, on the calling thread: kernel + tile shape from the
  // active ISA, MC/NC from the scoped override (the dispatcher's planned
  // blocking) or the tier default.
  const kernel_desc<T> desc = select_kernel_desc<T>();
  const int mr = desc.mr;
  const int nr = desc.nr;
  const gemm_blocking blk = effective_blocking();
  const blas_int block_m = blk.mc;
  const blas_int block_n = blk.nc;
  const kernel_isa isa = active_kernel_isa();

  // Panels packed ahead of time by the step scheduler (pack/compute
  // overlap): consume them instead of packing inline.  One relaxed load
  // when the cache is empty — the common case costs nothing.  A panel
  // set laid out for a different NC or NR (tier or blocking changed
  // between prepack and consume) is dropped rather than misread.
  std::shared_ptr<const prepacked_b_panels> pre;
  if (!prepack_cache_empty()) {
    pre = take_prepacked(b, ldb, static_cast<int>(transb), k, n,
                         prepack_type_tag<T>());
    if (pre && !(pre->block_n == block_n && pre->block_k == kBlockK &&
                 pre->nr == nr)) {
      pre.reset();
    }
  }

  for (blas_int jc = 0; jc < n; jc += block_n) {
    const blas_int nc = std::min<blas_int>(block_n, n - jc);
    const blas_int n_strips = (nc + nr - 1) / nr;
    for (blas_int pc = 0; pc < k; pc += kBlockK) {
      const blas_int kc = std::min<blas_int>(kBlockK, k - pc);
      const T* bp;
      if (pre) {
        // Bit-identical to the inline pack_b below: same routine, same
        // layout and blocking (checked above), operand frozen since
        // prepack time (the contract in dcmesh/blas/prepack.hpp).
        bp = pre->template panel<T>(jc / block_n, pc / kBlockK);
      } else {
        T* bp_mut = pack_arena::for_thread().template acquire<T>(
            kArenaSlotB, static_cast<std::size_t>(n_strips) * kc * nr);
        pack_b(b, ldb, transb, pc, jc, kc, nc, bp_mut, nr,
               /*parallel=*/true);
        bp = bp_mut;
      }

      const blas_int ic_blocks = (m + block_m - 1) / block_m;
      const auto process_block = [&](blas_int ib) {
        const blas_int ic = ib * block_m;
        const blas_int mc = std::min<blas_int>(block_m, m - ic);
        const blas_int m_strips = (mc + mr - 1) / mr;
        T* ap = pack_arena::for_thread().template acquire<T>(
            kArenaSlotA, static_cast<std::size_t>(m_strips) * kc * mr);
        pack_a(a, lda, transa, ic, pc, mc, kc, ap, mr);

        T acc[kMaxMr * kMaxNr];
        for (blas_int js = 0; js < n_strips; ++js) {
          const blas_int j0 = jc + js * nr;
          const int cols = static_cast<int>(std::min<blas_int>(nr, n - j0));
          for (blas_int is = 0; is < m_strips; ++is) {
            const blas_int i0 = ic + is * mr;
            const int rows = static_cast<int>(std::min<blas_int>(mr, m - i0));
            std::fill_n(acc, mr * nr, T(0));
            call_micro_kernel(desc.fn, kc, ap + is * (kc * mr),
                              bp + js * (kc * nr), acc);
            accumulate_tile(m, n, alpha, acc, i0, j0, rows, cols, c, ldc,
                            nr);
          }
        }
      };
      // The ic sweep runs on the scheduler's worker team (the shared
      // pool under DCMESH_SCHED=pool — so inter-node graph parallelism
      // and intra-GEMM parallelism use one thread set — an OpenMP team
      // otherwise).  Past the crossover, dynamic scheduling absorbs
      // edge-block and system-noise imbalance; below it, static
      // assignment is cheaper.
      sched::team_parallel_for(ic_blocks,
                               /*dynamic_chunks=*/ic_blocks >=
                                   ic_dynamic_crossover(isa),
                               [&](long ib) { process_block(ib); });
    }
  }
}

/// Full standard-arithmetic GEMM: C <- alpha*op(A)*op(B) + beta*C.
template <typename T>
void gemm_blocked(transpose transa, transpose transb, blas_int m, blas_int n,
                  blas_int k, T alpha, const T* a, blas_int lda, const T* b,
                  blas_int ldb, T beta, T* c, blas_int ldc) {
  validate_gemm_args(transa, transb, m, n, k, a, lda, b, ldb, c, ldc,
                     /*needs_ab=*/alpha != T(0));
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c, ldc);
  gemm_blocked_accumulate(transa, transb, m, n, k, alpha, a, lda, b, ldb, c,
                          ldc);
}

}  // namespace dcmesh::blas::detail
