#pragma once
// dispatch_internal.hpp — the dispatcher's resolve/execute split, shared
// with the batched entry point.
//
// run(gemm_call<T>) is plan_call() followed by run_planned().  The batched
// path needs the two halves separately: it plans ONCE for the whole batch
// (so an `auto` rule costs one tuner resolution per batched call, not one
// per element) and owns the single trace span covering the batch, while
// each element still executes — and is verbose-logged — through
// run_planned() with span emission suppressed.

#include <complex>
#include <type_traits>

#include "dcmesh/blas/autotune_hook.hpp"
#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/precision_policy.hpp"

namespace dcmesh::blas::detail {

/// Routine naming/classification per element type.
template <typename T>
struct gemm_traits {
  static constexpr const char* routine = "SGEMM";
  static constexpr bool is_complex = false;
  static constexpr bool is_fp64 = false;
};
template <>
struct gemm_traits<double> {
  static constexpr const char* routine = "DGEMM";
  static constexpr bool is_complex = false;
  static constexpr bool is_fp64 = true;
};
template <>
struct gemm_traits<std::complex<float>> {
  static constexpr const char* routine = "CGEMM";
  static constexpr bool is_complex = true;
  static constexpr bool is_fp64 = false;
};
template <>
struct gemm_traits<std::complex<double>> {
  static constexpr const char* routine = "ZGEMM";
  static constexpr bool is_complex = true;
  static constexpr bool is_fp64 = true;
};

/// Fully resolved execution plan for one descriptor (or one whole batch):
/// the policy resolution with any AUTO rule already collapsed to a
/// concrete mode through the auto_tune_hook.
struct call_plan {
  mode_resolution res;
  /// != none exactly when an AUTO rule chose res.mode.
  auto_provenance tune = auto_provenance::none;
  /// Cache blocking for the whole planned execution (0 = per-ISA
  /// default): an explicit gemm_call override wins, else the tuner's
  /// per-shape wisdom.  Installed as a scoped override around
  /// run_planned so guard and health re-runs block identically —
  /// harmless for correctness (blocking is bit-neutral), but it keeps
  /// timings comparable.
  blas_int block_m = 0;
  blas_int block_n = 0;
  /// Resolved ABFT checksum-guard mode (per-call override > policy rule's
  /// abft= flag > DCMESH_ABFT process default).  Applied by run_planned
  /// for real element types; complex falls back to off.
  resil::abft_mode abft = resil::abft_mode::off;
};

/// Resolve site policy + auto hook for one call's shape.
template <typename T>
[[nodiscard]] call_plan plan_call(const gemm_call<T>& call);

/// Execute one descriptor under an already-resolved plan.  emit_span=false
/// suppresses the per-call trace span (the batched path owns the span);
/// the verbose record and metrics are emitted either way.
template <typename T>
void run_planned(const gemm_call<T>& call, const call_plan& plan,
                 bool emit_span);

extern template call_plan plan_call<float>(const gemm_call<float>&);
extern template call_plan plan_call<double>(const gemm_call<double>&);
extern template call_plan plan_call<std::complex<float>>(
    const gemm_call<std::complex<float>>&);
extern template call_plan plan_call<std::complex<double>>(
    const gemm_call<std::complex<double>>&);

extern template void run_planned<float>(const gemm_call<float>&,
                                        const call_plan&, bool);
extern template void run_planned<double>(const gemm_call<double>&,
                                         const call_plan&, bool);
extern template void run_planned<std::complex<float>>(
    const gemm_call<std::complex<float>>&, const call_plan&, bool);
extern template void run_planned<std::complex<double>>(
    const gemm_call<std::complex<double>>&, const call_plan&, bool);

}  // namespace dcmesh::blas::detail
