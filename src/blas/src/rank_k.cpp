#include "dcmesh/blas/rank_k.hpp"

#include <stdexcept>

#include "dcmesh/blas/gemm_call.hpp"

namespace dcmesh::blas {
namespace {

void validate_rank_k(blas_int n, blas_int k, blas_int lda, blas_int ldc,
                     blas_int rows_a) {
  if (n < 0 || k < 0) throw std::invalid_argument("rank-k: negative dim");
  if (lda < std::max<blas_int>(1, rows_a)) {
    throw std::invalid_argument("rank-k: lda too small");
  }
  if (ldc < std::max<blas_int>(1, n)) {
    throw std::invalid_argument("rank-k: ldc too small");
  }
}

// Rank-k products route through the descriptor dispatcher so the per-site
// precision policy, the accuracy guard, timing, and verbose logging all
// apply to them exactly as to gemm — and, downstream of dispatch, so do
// the fused split-mode engine and its per-thread packing arena (herk/syrk
// under a FLOAT_TO_* mode run the pack-once component pipeline).
template <typename T>
void rank_k_product(transpose ta, transpose tb, blas_int n, blas_int k,
                    T alpha, const T* a, blas_int lda, T beta, T* c,
                    blas_int ldc, std::string_view call_site) {
  gemm_call<T> call;
  call.transa = ta;
  call.transb = tb;
  call.m = n;
  call.n = n;
  call.k = k;
  call.alpha = alpha;
  call.a = a;
  call.lda = lda;
  call.b = a;
  call.ldb = lda;
  call.beta = beta;
  call.c = c;
  call.ldc = ldc;
  call.call_site = call_site;
  run(call);
}

}  // namespace

template <typename T>
void syrk(uplo u, transpose trans, blas_int n, blas_int k, T alpha,
          const T* a, blas_int lda, T beta, T* c, blas_int ldc,
          std::string_view call_site) {
  const blas_int rows_a = trans == transpose::none ? n : k;
  validate_rank_k(n, k, lda, ldc, rows_a);
  if (n == 0) return;

  // Route through the descriptor path so the compute mode applies
  // identically, then make the result exactly symmetric by mirroring the
  // `u` triangle.
  rank_k_product(trans,
                 trans == transpose::none ? transpose::trans
                                          : transpose::none,
                 n, k, alpha, a, lda, beta, c, ldc, call_site);
  for (blas_int j = 0; j < n; ++j) {
    for (blas_int i = 0; i < j; ++i) {
      if (u == uplo::upper) {
        c[j + i * ldc] = c[i + j * ldc];
      } else {
        c[i + j * ldc] = c[j + i * ldc];
      }
    }
  }
}

template <typename R>
void herk(uplo u, transpose trans, blas_int n, blas_int k, R alpha,
          const std::complex<R>* a, blas_int lda, R beta,
          std::complex<R>* c, blas_int ldc, std::string_view call_site) {
  using C = std::complex<R>;
  const blas_int rows_a = trans == transpose::none ? n : k;
  validate_rank_k(n, k, lda, ldc, rows_a);
  if (n == 0) return;

  if (trans == transpose::none) {
    // C = alpha * A * A^H + beta * C.
    rank_k_product(transpose::none, transpose::conj_trans, n, k, C(alpha),
                   a, lda, C(beta), c, ldc, call_site);
  } else {
    // C = alpha * A^H * A + beta * C.
    rank_k_product(transpose::conj_trans, transpose::none, n, k, C(alpha),
                   a, lda, C(beta), c, ldc, call_site);
  }
  // Enforce exact hermiticity: real diagonal, mirrored `u` triangle.
  for (blas_int j = 0; j < n; ++j) {
    c[j + j * ldc] = C(c[j + j * ldc].real(), R(0));
    for (blas_int i = 0; i < j; ++i) {
      if (u == uplo::upper) {
        c[j + i * ldc] = std::conj(c[i + j * ldc]);
      } else {
        c[i + j * ldc] = std::conj(c[j + i * ldc]);
      }
    }
  }
}

template void syrk<float>(uplo, transpose, blas_int, blas_int, float,
                          const float*, blas_int, float, float*, blas_int,
                          std::string_view);
template void syrk<double>(uplo, transpose, blas_int, blas_int, double,
                           const double*, blas_int, double, double*,
                           blas_int, std::string_view);
template void herk<float>(uplo, transpose, blas_int, blas_int, float,
                          const std::complex<float>*, blas_int, float,
                          std::complex<float>*, blas_int, std::string_view);
template void herk<double>(uplo, transpose, blas_int, blas_int, double,
                           const std::complex<double>*, blas_int, double,
                           std::complex<double>*, blas_int,
                           std::string_view);

}  // namespace dcmesh::blas
