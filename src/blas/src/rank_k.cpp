#include "dcmesh/blas/rank_k.hpp"

#include <stdexcept>

namespace dcmesh::blas {
namespace {

void validate_rank_k(blas_int n, blas_int k, blas_int lda, blas_int ldc,
                     blas_int rows_a) {
  if (n < 0 || k < 0) throw std::invalid_argument("rank-k: negative dim");
  if (lda < std::max<blas_int>(1, rows_a)) {
    throw std::invalid_argument("rank-k: lda too small");
  }
  if (ldc < std::max<blas_int>(1, n)) {
    throw std::invalid_argument("rank-k: ldc too small");
  }
}

// Typed shims onto the public GEMM entry points (so the active compute
// mode, timing, and verbose logging all apply to the rank-k product).
void gemm_dispatch(transpose ta, transpose tb, blas_int m, blas_int n,
                   blas_int k, float alpha, const float* a, blas_int lda,
                   const float* b, blas_int ldb, float beta, float* c,
                   blas_int ldc) {
  sgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}
void gemm_dispatch(transpose ta, transpose tb, blas_int m, blas_int n,
                   blas_int k, double alpha, const double* a, blas_int lda,
                   const double* b, blas_int ldb, double beta, double* c,
                   blas_int ldc) {
  dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}
void gemm_dispatch(transpose ta, transpose tb, blas_int m, blas_int n,
                   blas_int k, std::complex<float> alpha,
                   const std::complex<float>* a, blas_int lda,
                   const std::complex<float>* b, blas_int ldb,
                   std::complex<float> beta, std::complex<float>* c,
                   blas_int ldc) {
  cgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}
void gemm_dispatch(transpose ta, transpose tb, blas_int m, blas_int n,
                   blas_int k, std::complex<double> alpha,
                   const std::complex<double>* a, blas_int lda,
                   const std::complex<double>* b, blas_int ldb,
                   std::complex<double> beta, std::complex<double>* c,
                   blas_int ldc) {
  zgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace

template <typename T>
void syrk(uplo u, transpose trans, blas_int n, blas_int k, T alpha,
          const T* a, blas_int lda, T beta, T* c, blas_int ldc) {
  const blas_int rows_a = trans == transpose::none ? n : k;
  validate_rank_k(n, k, lda, ldc, rows_a);
  if (n == 0) return;

  // Route through gemm so the compute mode applies identically, then make
  // the result exactly symmetric by mirroring the `u` triangle.
  gemm_dispatch(trans,
                trans == transpose::none ? transpose::trans
                                         : transpose::none,
                n, n, k, alpha, a, lda, a, lda, beta, c, ldc);
  for (blas_int j = 0; j < n; ++j) {
    for (blas_int i = 0; i < j; ++i) {
      if (u == uplo::upper) {
        c[j + i * ldc] = c[i + j * ldc];
      } else {
        c[i + j * ldc] = c[j + i * ldc];
      }
    }
  }
}

template <typename R>
void herk(uplo u, transpose trans, blas_int n, blas_int k, R alpha,
          const std::complex<R>* a, blas_int lda, R beta,
          std::complex<R>* c, blas_int ldc) {
  using C = std::complex<R>;
  const blas_int rows_a = trans == transpose::none ? n : k;
  validate_rank_k(n, k, lda, ldc, rows_a);
  if (n == 0) return;

  if (trans == transpose::none) {
    // C = alpha * A * A^H + beta * C.
    gemm_dispatch(transpose::none, transpose::conj_trans, n, n, k, C(alpha),
                  a, lda, a, lda, C(beta), c, ldc);
  } else {
    // C = alpha * A^H * A + beta * C.
    gemm_dispatch(transpose::conj_trans, transpose::none, n, n, k, C(alpha),
                  a, lda, a, lda, C(beta), c, ldc);
  }
  // Enforce exact hermiticity: real diagonal, mirrored `u` triangle.
  for (blas_int j = 0; j < n; ++j) {
    c[j + j * ldc] = C(c[j + j * ldc].real(), R(0));
    for (blas_int i = 0; i < j; ++i) {
      if (u == uplo::upper) {
        c[j + i * ldc] = std::conj(c[i + j * ldc]);
      } else {
        c[i + j * ldc] = std::conj(c[j + i * ldc]);
      }
    }
  }
}

template void syrk<float>(uplo, transpose, blas_int, blas_int, float,
                          const float*, blas_int, float, float*, blas_int);
template void syrk<double>(uplo, transpose, blas_int, blas_int, double,
                           const double*, blas_int, double, double*,
                           blas_int);
template void herk<float>(uplo, transpose, blas_int, blas_int, float,
                          const std::complex<float>*, blas_int, float,
                          std::complex<float>*, blas_int);
template void herk<double>(uplo, transpose, blas_int, blas_int, double,
                           const std::complex<double>*, blas_int, double,
                           std::complex<double>*, blas_int);

}  // namespace dcmesh::blas
