#include "dcmesh/blas/autotune_hook.hpp"

#include <memory>
#include <mutex>

namespace dcmesh::blas {
namespace {

// Swapped under a mutex, invoked through a shared_ptr snapshot so a
// concurrent set_auto_tune_hook() cannot destroy a resolver mid-call
// (same shape as trace's gemm-time-model hook).
std::mutex g_hook_mutex;
std::shared_ptr<const auto_tune_fn> g_hook;  // guarded by g_hook_mutex

std::shared_ptr<const auto_tune_fn> hook_snapshot() {
  std::lock_guard lock(g_hook_mutex);
  return g_hook;
}

}  // namespace

std::string_view name(auto_provenance provenance) noexcept {
  switch (provenance) {
    case auto_provenance::none: return "none";
    case auto_provenance::calibrated: return "calibrated";
    case auto_provenance::cached: return "cached";
    case auto_provenance::modeled: return "modeled";
    case auto_provenance::defaulted: return "defaulted";
  }
  return "none";
}

void set_auto_tune_hook(auto_tune_fn fn) {
  std::lock_guard lock(g_hook_mutex);
  if (fn) {
    g_hook = std::make_shared<const auto_tune_fn>(std::move(fn));
  } else {
    g_hook.reset();
  }
}

bool auto_tune_hook_installed() { return hook_snapshot() != nullptr; }

std::optional<auto_tune_choice> auto_tune_resolve(
    const auto_tune_request& request) {
  const auto hook = hook_snapshot();
  if (!hook) return std::nullopt;
  return (*hook)(request);
}

}  // namespace dcmesh::blas
