#include "dcmesh/blas/trsm.hpp"

#include <chrono>
#include <stdexcept>

#include "dcmesh/blas/verbose.hpp"

namespace dcmesh::blas {
namespace {

template <typename T>
constexpr T conj_if(T v, bool c) {
  if constexpr (std::is_floating_point_v<T>) {
    (void)c;
    return v;
  } else {
    return c ? std::conj(v) : v;
  }
}

template <typename T>
struct trsm_traits {
  static constexpr const char* routine = "STRSM";
  static constexpr bool is_complex = false;
};
template <>
struct trsm_traits<double> {
  static constexpr const char* routine = "DTRSM";
  static constexpr bool is_complex = false;
};
template <>
struct trsm_traits<std::complex<float>> {
  static constexpr const char* routine = "CTRSM";
  static constexpr bool is_complex = true;
};
template <>
struct trsm_traits<std::complex<double>> {
  static constexpr const char* routine = "ZTRSM";
  static constexpr bool is_complex = true;
};

/// Real flop count of a triangular solve: order^2 * nrhs multiply-adds
/// over the triangle (standard LAPACK accounting).
constexpr double trsm_flops(bool is_complex, blas_int order,
                            blas_int nrhs) noexcept {
  const double work = static_cast<double>(order) *
                      static_cast<double>(order) *
                      static_cast<double>(nrhs);
  return (is_complex ? 4.0 : 1.0) * work;
}

template <typename T>
void trsm_solve(side s, uplo u, transpose trans, diag d, blas_int m,
                blas_int n, T alpha, const T* a, blas_int lda, T* b,
                blas_int ldb) {
  // Scale B by alpha first (alpha == 0 zeroes B, per BLAS).
  for (blas_int j = 0; j < n; ++j) {
    T* col = b + j * ldb;
    for (blas_int i = 0; i < m; ++i) {
      col[i] = alpha == T(0) ? T(0) : alpha * col[i];
    }
  }
  if (alpha == T(0)) return;

  // Element (r, c) of op(A); op folds transpose/conjugation into the
  // access pattern, flipping the effective triangle.
  const bool transposed = trans != transpose::none;
  const bool conjugated = trans == transpose::conj_trans;
  const auto op_a = [&](blas_int r, blas_int c) -> T {
    return transposed ? conj_if(a[c + r * lda], conjugated)
                      : a[r + c * lda];
  };
  // op(A) is upper-triangular iff the storage triangle flips under
  // transposition.
  const bool eff_upper = (u == uplo::upper) != transposed;
  const auto pivot = [&](blas_int i) -> T {
    if (d == diag::unit) return T(1);
    const T p = op_a(i, i);
    if (p == T(0)) throw std::invalid_argument("trsm: zero pivot");
    return p;
  };

  if (s == side::left) {
    // Solve op(A) X = B column by column.
    for (blas_int j = 0; j < n; ++j) {
      T* x = b + j * ldb;
      if (eff_upper) {
        for (blas_int i = m - 1; i >= 0; --i) {
          T sum = x[i];
          for (blas_int p = i + 1; p < m; ++p) sum -= op_a(i, p) * x[p];
          x[i] = sum / pivot(i);
        }
      } else {
        for (blas_int i = 0; i < m; ++i) {
          T sum = x[i];
          for (blas_int p = 0; p < i; ++p) sum -= op_a(i, p) * x[p];
          x[i] = sum / pivot(i);
        }
      }
    }
    return;
  }

  // side::right — solve X op(A) = B: column recurrence over j.
  if (eff_upper) {
    for (blas_int j = 0; j < n; ++j) {
      T* xj = b + j * ldb;
      for (blas_int p = 0; p < j; ++p) {
        const T w = op_a(p, j);
        if (w == T(0)) continue;
        const T* xp = b + p * ldb;
        for (blas_int i = 0; i < m; ++i) xj[i] -= xp[i] * w;
      }
      const T piv = pivot(j);
      for (blas_int i = 0; i < m; ++i) xj[i] /= piv;
    }
  } else {
    for (blas_int j = n - 1; j >= 0; --j) {
      T* xj = b + j * ldb;
      for (blas_int p = j + 1; p < n; ++p) {
        const T w = op_a(p, j);
        if (w == T(0)) continue;
        const T* xp = b + p * ldb;
        for (blas_int i = 0; i < m; ++i) xj[i] -= xp[i] * w;
      }
      const T piv = pivot(j);
      for (blas_int i = 0; i < m; ++i) xj[i] /= piv;
    }
  }
}

}  // namespace

template <typename T>
void trsm(side s, uplo u, transpose trans, diag d, blas_int m, blas_int n,
          T alpha, const T* a, blas_int lda, T* b, blas_int ldb,
          std::string_view call_site) {
  if (m < 0 || n < 0) throw std::invalid_argument("trsm: negative dim");
  const blas_int order = s == side::left ? m : n;
  if (lda < std::max<blas_int>(1, order)) {
    throw std::invalid_argument("trsm: lda too small");
  }
  if (ldb < std::max<blas_int>(1, m)) {
    throw std::invalid_argument("trsm: ldb too small");
  }
  if (m == 0 || n == 0) return;

  const auto start = std::chrono::steady_clock::now();
  trsm_solve(s, u, trans, d, m, n, alpha, a, lda, b, ldb);
  const auto stop = std::chrono::steady_clock::now();

  // Triangular solves never change arithmetic under compute modes, but they
  // are part of the level-3 surface: time and log each one so per-site
  // attribution (MKL_VERBOSE / JSONL) covers the whole hot path.
  call_record record;
  record.routine = trsm_traits<T>::routine;
  record.transa = static_cast<char>(trans);
  record.transb = static_cast<char>(s);
  record.m = m;
  record.n = n;
  record.k = order;
  record.lda = lda;
  record.ldb = ldb;
  record.ldc = ldb;
  record.seconds = std::chrono::duration<double>(stop - start).count();
  record.flops = trsm_flops(trsm_traits<T>::is_complex, order,
                            s == side::left ? n : m);
  record.mode = compute_mode::standard;
  record.call_site = std::string(call_site);
  record.requested_mode = compute_mode::standard;
  record_call(std::move(record));
}

#define DCMESH_INSTANTIATE_TRSM(T)                                        \
  template void trsm<T>(side, uplo, transpose, diag, blas_int, blas_int,  \
                        T, const T*, blas_int, T*, blas_int,              \
                        std::string_view);

DCMESH_INSTANTIATE_TRSM(float)
DCMESH_INSTANTIATE_TRSM(double)
DCMESH_INSTANTIATE_TRSM(std::complex<float>)
DCMESH_INSTANTIATE_TRSM(std::complex<double>)
#undef DCMESH_INSTANTIATE_TRSM

}  // namespace dcmesh::blas
