// split_avx512bf16.cpp — native AVX512-BF16 fused engine for the bf16
// split modes (FLOAT_TO_BF16{,X2,X3}).
//
// The software engine (sgemm_split) packs each BF16 component as its
// rounded FP32 representation and multiplies with FP32 fmadds.  On
// AVX512-BF16 silicon the rounding and the multiply both exist in
// hardware, so this engine packs the raw 16-bit component patterns —
// pair-interleaved along k, one 32-bit unit per (even, odd) k pair —
// with vcvtne2ps2bf16, and the dot kernel contracts them with vdpbf16ps
// (2 bf16 products + fp32 accumulate per lane per instruction): half the
// packed bytes and twice the per-instruction flops of the fp32 path.
//
// Numerical contract: vdpbf16ps sums each k pair in hardware before the
// fp32 accumulate, so the accumulation ORDER differs from the software
// engine's one-fmadd-per-k chain.  Every product is still individually
// exact (7-bit x 7-bit mantissas), so results are ULP-equivalent, NOT
// bit-identical, to sgemm_split — which is why dispatch gates this path
// behind bf16_native_active() and the bit-exactness tests force it off.
// Component VALUES are identical except that vcvtne2ps2bf16 flushes
// subnormal component values to zero where the software chain keeps
// them; both land well inside the bf16 ULP bound the tests use.
//
// Tile geometry matches the avx512 fp32 tier (14 x 32) so the MC/NC
// blocking quanta and tuned blockings apply unchanged.

#if defined(DCMESH_HAVE_AVX512BF16_KERNELS)

#include <immintrin.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>

#include "gemm_kernel.hpp"
#include "split.hpp"

namespace dcmesh::blas::detail {
namespace {

// Same register-tile shape as micro_kernel_avx512_f32: 14 rows x 32
// columns = 28 zmm fp32 accumulators + 2 B vectors + 1 broadcast.
inline constexpr int kNativeMr = 14;
inline constexpr int kNativeNr = 32;

static_assert(kBlockK % 2 == 0,
              "pair-interleaved panels assume an even K block");
static_assert(kNativeMr <= kMaxMr && kNativeNr <= kMaxNr);

[[nodiscard]] double engine_now() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// __m512i and __m512bh both carry __may_alias__, so a reference
// reinterpret is the sanctioned zero-cost bridge (GCC has no
// _mm512_castsi512_bh).
[[nodiscard]] inline __m512bh as_bh(const __m512i& v) noexcept {
  return reinterpret_cast<const __m512bh&>(v);
}

/// Round one contiguous column of kc_padded floats (zero-padded past the
/// live kc, kc_padded a multiple of 32) to its bf16 component chain:
/// comp c receives the raw 16-bit patterns at bits[c * kc_padded + p].
/// The recurrence is exactly split_operand's — round, subtract the
/// rounded value (rebuilt by exact widening), repeat — with
/// vcvtne2ps2bf16 doing the round-to-nearest-even.
inline void round_column_chain(const float* col, int ncomp,
                               blas_int kc_padded, std::uint16_t* bits) {
  for (blas_int p = 0; p < kc_padded; p += 32) {
    __m512 x0 = _mm512_loadu_ps(col + p);
    __m512 x1 = _mm512_loadu_ps(col + p + 16);
    for (int c = 0; c < ncomp; ++c) {
      // Words 0..15 of the result come from the SECOND operand, so this
      // stores the 32 bf16 patterns in ascending-p memory order.
      const __m512bh bh = _mm512_cvtne2ps_pbh(x1, x0);
      const __m512i w = reinterpret_cast<const __m512i&>(bh);
      _mm512_storeu_si512(bits + static_cast<std::size_t>(c) * kc_padded + p,
                          w);
      if (c + 1 < ncomp) {
        // residual -= widen(component): exact, like bf16::to_float().
        const __m256i lo = _mm512_castsi512_si256(w);
        const __m256i hi = _mm512_extracti64x4_epi64(w, 1);
        x0 = _mm512_sub_ps(
            x0, _mm512_castsi512_ps(
                    _mm512_slli_epi32(_mm512_cvtepu16_epi32(lo), 16)));
        x1 = _mm512_sub_ps(
            x1, _mm512_castsi512_ps(
                    _mm512_slli_epi32(_mm512_cvtepu16_epi32(hi), 16)));
      }
    }
  }
}

/// Fused pack of a kc x nc panel of op(B) into pair-interleaved bf16
/// component strips: strip s holds kc_pairs * kNativeNr uint32 units,
/// unit (q, j) = bits(p = 2q) | bits(p = 2q + 1) << 16 for strip column
/// j.  Odd kc pads the final pair's high half with +0.0 (a zero bf16
/// pattern), which vdpbf16ps turns into an exact no-op product.
void pack_b_bf16_pairs(const float* b, blas_int ldb, transpose op,
                       blas_int row0, blas_int col0, blas_int kc,
                       blas_int nc, int ncomp, std::uint32_t* dst,
                       std::size_t comp_stride, bool parallel) {
  const blas_int strips = (nc + kNativeNr - 1) / kNativeNr;
  const blas_int kc_pairs = (kc + 1) / 2;
  const blas_int kc_padded = (kc + 31) & ~blas_int{31};
#if defined(DCMESH_HAVE_OPENMP)
#pragma omp parallel for schedule(static)       \
    if (parallel && ncomp * kc * nc >=          \
                        pack_parallel_min_elems(kernel_isa::avx512))
#else
  (void)parallel;
#endif
  for (blas_int s = 0; s < strips; ++s) {
    const std::size_t strip_off = static_cast<std::size_t>(s) *
                                  (static_cast<std::size_t>(kc_pairs) *
                                   kNativeNr);
    const blas_int j0 = s * kNativeNr;
    const int cols = static_cast<int>(std::min<blas_int>(kNativeNr, nc - j0));
    alignas(64) float colbuf[kBlockK];
    alignas(64) std::uint16_t bits[3 * kBlockK];
    std::fill(colbuf + kc, colbuf + kc_padded, 0.0f);
    for (int j = 0; j < kNativeNr; ++j) {
      if (j < cols) {
        if (op == transpose::none) {
          std::memcpy(colbuf,
                      b + row0 + static_cast<std::size_t>(col0 + j0 + j) * ldb,
                      static_cast<std::size_t>(kc) * sizeof(float));
        } else {  // trans / conj_trans (identical for real operands)
          const float* src =
              b + (col0 + j0 + j) + static_cast<std::size_t>(row0) * ldb;
          for (blas_int p = 0; p < kc; ++p) {
            colbuf[p] = src[static_cast<std::size_t>(p) * ldb];
          }
        }
        round_column_chain(colbuf, ncomp, kc_padded, bits);
        for (int c = 0; c < ncomp; ++c) {
          // Adjacent little-endian uint16 pairs ARE the lo | hi << 16
          // interleave — reinterpret, no shuffle.
          const std::uint32_t* units = reinterpret_cast<const std::uint32_t*>(
              bits + static_cast<std::size_t>(c) * kc_padded);
          std::uint32_t* out =
              dst + static_cast<std::size_t>(c) * comp_stride + strip_off + j;
          for (blas_int u = 0; u < kc_pairs; ++u) {
            out[static_cast<std::size_t>(u) * kNativeNr] = units[u];
          }
        }
      } else {
        for (int c = 0; c < ncomp; ++c) {
          std::uint32_t* out =
              dst + static_cast<std::size_t>(c) * comp_stride + strip_off + j;
          for (blas_int u = 0; u < kc_pairs; ++u) {
            out[static_cast<std::size_t>(u) * kNativeNr] = 0;
          }
        }
      }
    }
  }
}

/// Fused pack of an mc x kc block of op(A) into pair-interleaved strips:
/// strip s holds kc_pairs * kNativeMr units, unit (q, i) for strip row i.
void pack_a_bf16_pairs(const float* a, blas_int lda, transpose op,
                       blas_int row0, blas_int col0, blas_int mc,
                       blas_int kc, int ncomp, std::uint32_t* dst,
                       std::size_t comp_stride) {
  const blas_int strips = (mc + kNativeMr - 1) / kNativeMr;
  const blas_int kc_pairs = (kc + 1) / 2;
  const blas_int kc_padded = (kc + 31) & ~blas_int{31};
  alignas(64) float colbuf[kBlockK];
  alignas(64) std::uint16_t bits[3 * kBlockK];
  std::fill(colbuf + kc, colbuf + kc_padded, 0.0f);
  for (blas_int s = 0; s < strips; ++s) {
    const std::size_t strip_off = static_cast<std::size_t>(s) *
                                  (static_cast<std::size_t>(kc_pairs) *
                                   kNativeMr);
    const blas_int i0 = s * kNativeMr;
    const int rows = static_cast<int>(std::min<blas_int>(kNativeMr, mc - i0));
    for (int i = 0; i < kNativeMr; ++i) {
      if (i < rows) {
        if (op == transpose::none) {
          const float* src =
              a + (row0 + i0 + i) + static_cast<std::size_t>(col0) * lda;
          for (blas_int p = 0; p < kc; ++p) {
            colbuf[p] = src[static_cast<std::size_t>(p) * lda];
          }
        } else {  // op(A) row is a contiguous source column
          std::memcpy(colbuf,
                      a + col0 + static_cast<std::size_t>(row0 + i0 + i) * lda,
                      static_cast<std::size_t>(kc) * sizeof(float));
        }
        round_column_chain(colbuf, ncomp, kc_padded, bits);
        for (int c = 0; c < ncomp; ++c) {
          const std::uint32_t* units = reinterpret_cast<const std::uint32_t*>(
              bits + static_cast<std::size_t>(c) * kc_padded);
          std::uint32_t* out =
              dst + static_cast<std::size_t>(c) * comp_stride + strip_off + i;
          for (blas_int u = 0; u < kc_pairs; ++u) {
            out[static_cast<std::size_t>(u) * kNativeMr] = units[u];
          }
        }
      } else {
        for (int c = 0; c < ncomp; ++c) {
          std::uint32_t* out =
              dst + static_cast<std::size_t>(c) * comp_stride + strip_off + i;
          for (blas_int u = 0; u < kc_pairs; ++u) {
            out[static_cast<std::size_t>(u) * kNativeMr] = 0;
          }
        }
      }
    }
  }
}

#define DCMESH_BF16_ROWS(X) \
  X(0) X(1) X(2) X(3) X(4) X(5) X(6) X(7) X(8) X(9) X(10) X(11) X(12) X(13)

/// 14 x 32 vdpbf16ps register tile over kc_pairs pair units: each
/// instruction multiplies one A pair broadcast against 16 B pair units
/// and adds both products into the fp32 accumulator lane.  Named
/// accumulators for the same reason as microkernel_avx512.cpp: an array
/// would spill.
void bf16_dot_kernel_14x32(blas_int kc_pairs, const std::uint32_t* ap,
                           const std::uint32_t* bp, float* acc) {
#define DCMESH_BF16_LOAD(i)                                \
  __m512 c##i##0 = _mm512_loadu_ps(acc + (i) * kNativeNr); \
  __m512 c##i##1 = _mm512_loadu_ps(acc + (i) * kNativeNr + 16);
  DCMESH_BF16_ROWS(DCMESH_BF16_LOAD)
#undef DCMESH_BF16_LOAD
  for (blas_int q = 0; q < kc_pairs; ++q) {
    const std::uint32_t* aq = ap + static_cast<std::size_t>(q) * kNativeMr;
    const __m512i b0i =
        _mm512_loadu_si512(bp + static_cast<std::size_t>(q) * kNativeNr);
    const __m512i b1i =
        _mm512_loadu_si512(bp + static_cast<std::size_t>(q) * kNativeNr + 16);
    const __m512bh b0 = as_bh(b0i);
    const __m512bh b1 = as_bh(b1i);
#define DCMESH_BF16_FMA(i)                                              \
  {                                                                     \
    const __m512i a##i = _mm512_set1_epi32(static_cast<int>(aq[i]));    \
    c##i##0 = _mm512_dpbf16_ps(c##i##0, as_bh(a##i), b0);               \
    c##i##1 = _mm512_dpbf16_ps(c##i##1, as_bh(a##i), b1);               \
  }
    DCMESH_BF16_ROWS(DCMESH_BF16_FMA)
#undef DCMESH_BF16_FMA
  }
#define DCMESH_BF16_STORE(i)                      \
  _mm512_storeu_ps(acc + (i) * kNativeNr, c##i##0); \
  _mm512_storeu_ps(acc + (i) * kNativeNr + 16, c##i##1);
  DCMESH_BF16_ROWS(DCMESH_BF16_STORE)
#undef DCMESH_BF16_STORE
}

#undef DCMESH_BF16_ROWS

}  // namespace

void sgemm_split_bf16_native(compute_mode mode, transpose transa,
                             transpose transb, blas_int m, blas_int n,
                             blas_int k, float alpha, const float* a,
                             blas_int lda, const float* b, blas_int ldb,
                             float beta, float* c, blas_int ldc) {
  validate_gemm_args(transa, transb, m, n, k, a, lda, b, ldb, c, ldc,
                     /*needs_ab=*/alpha != 0.0f);
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0f) return;

  const split_spec spec = split_for(mode);
  const auto products = retained_products(spec.components);
  const gemm_blocking blk = effective_blocking();
  const blas_int block_m = blk.mc;
  const blas_int block_n = blk.nc;
  const int ncomp = spec.components;
  const blas_int num_pc = (k + kBlockK - 1) / kBlockK;

  const bool profile = split_profiling_enabled();
  double pack_b_seconds = 0.0;
  std::atomic<std::int64_t> pack_a_ns{0};
  std::atomic<std::int64_t> compute_ns{0};

  for (blas_int jc = 0; jc < n; jc += block_n) {
    const blas_int nc = std::min<blas_int>(block_n, n - jc);
    const blas_int n_strips = (nc + kNativeNr - 1) / kNativeNr;
    // Uniform per-(panel, component) stride in uint32 pair units, sized
    // for a full kBlockK panel; the last panel is just shorter.
    const std::size_t b_stride = static_cast<std::size_t>(n_strips) *
                                 (kBlockK / 2) * kNativeNr;
    std::uint32_t* bpack = pack_arena::for_thread().acquire<std::uint32_t>(
        kArenaSlotB,
        static_cast<std::size_t>(num_pc) * ncomp * b_stride);

    const double tb0 = profile ? engine_now() : 0.0;
    for (blas_int t = 0; t < num_pc; ++t) {
      const blas_int pc = t * kBlockK;
      const blas_int kc = std::min<blas_int>(kBlockK, k - pc);
      pack_b_bf16_pairs(b, ldb, transb, pc, jc, kc, nc, ncomp,
                        bpack + static_cast<std::size_t>(t) * ncomp * b_stride,
                        b_stride, /*parallel=*/true);
    }
    if (profile) pack_b_seconds += engine_now() - tb0;

    const blas_int ic_blocks = (m + block_m - 1) / block_m;
    const auto process_block = [&](blas_int ib) {
      const blas_int ic = ib * block_m;
      const blas_int mc = std::min<blas_int>(block_m, m - ic);
      const blas_int m_strips = (mc + kNativeMr - 1) / kNativeMr;
      const std::size_t a_stride = static_cast<std::size_t>(m_strips) *
                                   (kBlockK / 2) * kNativeMr;
      std::uint32_t* apack = pack_arena::for_thread().acquire<std::uint32_t>(
          kArenaSlotA,
          static_cast<std::size_t>(num_pc) * ncomp * a_stride);

      const double ta0 = profile ? engine_now() : 0.0;
      for (blas_int t = 0; t < num_pc; ++t) {
        const blas_int pc = t * kBlockK;
        const blas_int kc = std::min<blas_int>(kBlockK, k - pc);
        pack_a_bf16_pairs(a, lda, transa, ic, pc, mc, kc, ncomp,
                          apack +
                              static_cast<std::size_t>(t) * ncomp * a_stride,
                          a_stride);
      }
      const double ta1 = profile ? engine_now() : 0.0;

      // Same sweep order as sgemm_split: product-major, pc ascending,
      // tiles inside — per-product accumulation into C stays in the
      // reference order; only the intra-pair hardware sum differs.
      alignas(64) float acc[kNativeMr * kNativeNr];
      for (const auto& [pi, pj] : products) {
        for (blas_int t = 0; t < num_pc; ++t) {
          const blas_int kc = std::min<blas_int>(kBlockK, k - t * kBlockK);
          const blas_int kc_pairs = (kc + 1) / 2;
          const std::uint32_t* ap_panel =
              apack + (static_cast<std::size_t>(t) * ncomp + pi) * a_stride;
          const std::uint32_t* bp_panel =
              bpack + (static_cast<std::size_t>(t) * ncomp + pj) * b_stride;
          for (blas_int js = 0; js < n_strips; ++js) {
            const blas_int j0 = jc + js * kNativeNr;
            const int cols =
                static_cast<int>(std::min<blas_int>(kNativeNr, n - j0));
            for (blas_int is = 0; is < m_strips; ++is) {
              const blas_int i0 = ic + is * kNativeMr;
              const int rows =
                  static_cast<int>(std::min<blas_int>(kNativeMr, m - i0));
              std::fill_n(acc, kNativeMr * kNativeNr, 0.0f);
              bf16_dot_kernel_14x32(
                  kc_pairs,
                  ap_panel + static_cast<std::size_t>(is) *
                                 (static_cast<std::size_t>(kc_pairs) *
                                  kNativeMr),
                  bp_panel + static_cast<std::size_t>(js) *
                                 (static_cast<std::size_t>(kc_pairs) *
                                  kNativeNr),
                  acc);
              accumulate_tile(m, n, alpha, acc, i0, j0, rows, cols, c, ldc,
                              kNativeNr);
            }
          }
        }
      }
      if (profile) {
        const double ta2 = engine_now();
        pack_a_ns.fetch_add(static_cast<std::int64_t>((ta1 - ta0) * 1e9),
                            std::memory_order_relaxed);
        compute_ns.fetch_add(static_cast<std::int64_t>((ta2 - ta1) * 1e9),
                             std::memory_order_relaxed);
      }
    };
    if (ic_blocks >= ic_dynamic_crossover(kernel_isa::avx512)) {
#if defined(DCMESH_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
      for (blas_int ib = 0; ib < ic_blocks; ++ib) process_block(ib);
    } else {
#if defined(DCMESH_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (blas_int ib = 0; ib < ic_blocks; ++ib) process_block(ib);
    }
  }

  if (profile) {
    split_profile_add(pack_a_ns.load(std::memory_order_relaxed) * 1e-9,
                      pack_b_seconds,
                      compute_ns.load(std::memory_order_relaxed) * 1e-9);
  }
}

}  // namespace dcmesh::blas::detail

#endif  // DCMESH_HAVE_AVX512BF16_KERNELS
