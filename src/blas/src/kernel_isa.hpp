#pragma once
// kernel_isa.hpp — runtime microkernel ISA selection (internal).
//
// The blocked GEMM core dispatches its register-tile microkernel at
// runtime.  `auto` resolves to the explicit AVX2+FMA kernels only when
// they would be an upgrade: the build carries them, the CPU advertises
// avx2+fma, AND the baseline compile lacks AVX2 codegen.  When the
// library itself is built with -march=native on an AVX2-or-wider host the
// scalar template already autovectorizes at full width and inlines into
// the blocked loop, so `auto` keeps it.  The choice is overridable with
// DCMESH_KERNEL_ISA={auto,avx2,scalar}: `avx2` on an
// incapable host and any malformed token warn once to stderr and fall
// back (to scalar and to auto respectively) — kernel selection must never
// throw.  Tests and benches can force a kernel in-process with
// set_kernel_isa(); passing nullopt re-resolves from the environment.

#include <optional>
#include <string_view>

namespace dcmesh::blas::detail {

/// Which microkernel family the blocked core uses for float/double tiles.
/// (Complex tiles always use the scalar template.)
enum class kernel_isa { scalar = 0, avx2 = 1 };

inline constexpr std::string_view kKernelIsaEnvVar = "DCMESH_KERNEL_ISA";

/// True when the binary carries the AVX2+FMA kernels AND the CPU supports
/// them at runtime.
[[nodiscard]] bool avx2_kernels_available() noexcept;

/// The ISA the next GEMM call will dispatch to (override > env > auto).
/// Resolved once and cached; thread-safe.
[[nodiscard]] kernel_isa active_kernel_isa() noexcept;

/// Force an ISA in-process (testing/benching); nullopt drops the override
/// and re-resolves from DCMESH_KERNEL_ISA / CPU detection.  Requesting
/// avx2 on a host without it resolves to scalar (with a one-time warning).
void set_kernel_isa(std::optional<kernel_isa> isa) noexcept;

/// Token for logs/bench labels: "avx2" or "scalar".
[[nodiscard]] std::string_view kernel_isa_name(kernel_isa isa) noexcept;

}  // namespace dcmesh::blas::detail
