#pragma once
// kernel_isa.hpp — runtime microkernel ISA selection (internal).
//
// The blocked GEMM core dispatches its register-tile microkernel at
// runtime across three tiers: scalar (portable, autovectorized), avx2
// (explicit 6x16/4x8 YMM kernels) and avx512 (explicit 14x32/8x16 ZMM
// kernels).  `auto` resolves to an explicit tier only when it would be
// an upgrade: the build carries the kernels, the CPU advertises the
// feature set, AND the baseline compile's codegen is narrower.  When
// the library itself is built with -march=native on an AVX-512 host
// the scalar template already autovectorizes at full ZMM width and
// inlines into the blocked loop, so `auto` keeps it; on an AVX2
// baseline the ZMM kernels are still wider than anything the compiler
// emitted, so `auto` upgrades to avx512 where available.  The choice is
// overridable with DCMESH_KERNEL_ISA={auto,avx512,avx2,scalar}: a tier
// the build/CPU cannot honour and any malformed token warn once to
// stderr and fall back (down the tier ladder and to auto respectively)
// — kernel selection must never throw.  Tests and benches can force a
// kernel in-process with set_kernel_isa(); passing nullopt re-resolves
// from the environment.
//
// On AVX512-BF16 silicon the avx512 tier additionally carries a native
// BF16 engine for the split compute modes (vcvtne2ps2bf16 packing +
// vdpbf16ps dot kernels; see split_avx512bf16.cpp).  It is engaged only
// when the active tier is avx512 and can be vetoed with
// DCMESH_BF16_NATIVE=0 (or forced off/on in-process for tests with
// set_bf16_native()).  The native path accumulates k in hardware pairs,
// so it is ULP-equivalent — not bit-identical — to the software
// split engine; anything that needs the bit-exact contract (golden
// trajectories run at the default tier, the fused-vs-reference oracle)
// keeps the software path.

#include <optional>
#include <string_view>

namespace dcmesh::blas::detail {

/// Which microkernel family the blocked core uses for float/double tiles.
/// (Complex tiles always use the scalar template.)
enum class kernel_isa { scalar = 0, avx2 = 1, avx512 = 2 };

inline constexpr std::string_view kKernelIsaEnvVar = "DCMESH_KERNEL_ISA";
inline constexpr std::string_view kBf16NativeEnvVar = "DCMESH_BF16_NATIVE";

/// True when the binary carries the AVX2+FMA kernels AND the CPU supports
/// them at runtime.
[[nodiscard]] bool avx2_kernels_available() noexcept;

/// True when the binary carries the AVX-512 kernels AND the CPU supports
/// avx512{f,bw,dq,vl} at runtime.
[[nodiscard]] bool avx512_kernels_available() noexcept;

/// True when the binary carries the AVX512-BF16 split engine AND the CPU
/// supports avx512bf16 (implies the avx512 kernel set).
[[nodiscard]] bool avx512bf16_kernels_available() noexcept;

/// The ISA the next GEMM call will dispatch to (override > env > auto).
/// Resolved once and cached; thread-safe.
[[nodiscard]] kernel_isa active_kernel_isa() noexcept;

/// Force an ISA in-process (testing/benching); nullopt drops the override
/// and re-resolves from DCMESH_KERNEL_ISA / CPU detection.  Requesting a
/// tier the build/CPU lacks resolves down the ladder (avx512 -> avx2 ->
/// scalar) with a one-time warning.
void set_kernel_isa(std::optional<kernel_isa> isa) noexcept;

/// True when the next split-mode SGEMM will use the native BF16 engine:
/// active tier is avx512, the build/CPU carry avx512bf16, and neither
/// DCMESH_BF16_NATIVE=0 nor set_bf16_native(false) vetoed it.
[[nodiscard]] bool bf16_native_active() noexcept;

/// Force the native BF16 engine on/off in-process (testing/benching);
/// nullopt re-resolves from DCMESH_BF16_NATIVE.  Forcing it on where the
/// build/CPU cannot honour it stays off (warn once, never throw).
void set_bf16_native(std::optional<bool> enabled) noexcept;

/// Token for logs/bench labels: "avx512", "avx2" or "scalar".
[[nodiscard]] std::string_view kernel_isa_name(kernel_isa isa) noexcept;

}  // namespace dcmesh::blas::detail
