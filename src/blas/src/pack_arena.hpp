#pragma once
// pack_arena.hpp — per-thread persistent GEMM packing storage (internal).
//
// The blocked kernels used to allocate their packed A/B panels with
// aligned_buffer inside the (jc, pc) and ic loops — an allocator
// round-trip per panel on the hottest path in the repo.  The arena keeps
// one grow-only 64-byte-aligned allocation per slot per thread, so after
// the first call at a given shape the packing path performs ZERO heap
// allocations (verified by test_fused_engine's AllocationFreeAfterWarmup).
//
// Lifetime rules:
//  - Each thread (OpenMP pool workers included) owns a thread_local arena;
//    acquire() pointers are valid on the acquiring thread until its next
//    acquire() of the SAME slot.  Slots never shrink and are freed only at
//    thread exit.
//  - A GEMM call uses slot_b on the calling thread for B panels (packed
//    before the parallel region, read by all workers) and slot_a on each
//    worker for its private A block — distinct slots, so the master
//    thread can hold both simultaneously.
//  - Slots must not be held across a nested GEMM call on the same thread;
//    the blocked kernels never do (component products are swept inside
//    one call, and the complex 3M/4M plane products run sequentially,
//    each acquiring afresh).
//
// Packed panels are fully written (edge tiles are zero-padded by the pack
// routines), so acquire() intentionally does not zero memory.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include "dcmesh/common/aligned.hpp"

namespace dcmesh::blas::detail {

/// Arena slots: B panels (packed by the calling thread, shared with the
/// parallel region) and A blocks (private to each worker thread).
inline constexpr int kArenaSlotB = 0;
inline constexpr int kArenaSlotA = 1;
inline constexpr int kArenaSlots = 2;

/// Grow-only aligned scratch slots; one instance per thread.
class pack_arena {
 public:
  pack_arena() noexcept = default;
  pack_arena(const pack_arena&) = delete;
  pack_arena& operator=(const pack_arena&) = delete;

  ~pack_arena() {
    for (auto& s : slots_) {
      ::operator delete[](s.bytes, std::align_val_t{kCacheLineBytes});
    }
  }

  /// Scratch for `count` elements of T in `slot`.  Reuses (and may
  /// invalidate) the slot's previous allocation; grows only when the
  /// running maximum does.
  template <typename T>
  [[nodiscard]] T* acquire(int slot, std::size_t count) {
    slot_storage& s = slots_[slot];
    const std::size_t bytes = count * sizeof(T);
    if (bytes > s.capacity) {
      ::operator delete[](s.bytes, std::align_val_t{kCacheLineBytes});
      s.bytes = nullptr;  // keep the dtor safe if the next line throws
      s.capacity = 0;
      s.bytes = static_cast<std::byte*>(::operator new[](
          bytes, std::align_val_t{kCacheLineBytes}));
      s.capacity = bytes;
      allocation_count().fetch_add(1, std::memory_order_relaxed);
    }
    return reinterpret_cast<T*>(s.bytes);
  }

  /// This thread's arena.
  [[nodiscard]] static pack_arena& for_thread() {
    thread_local pack_arena arena;
    return arena;
  }

  /// Process-wide count of slot (re)allocations — a steady value across
  /// repeated same-shape GEMMs is the "allocation-free after warmup"
  /// property the tests lock.
  [[nodiscard]] static std::uint64_t total_allocations() noexcept {
    return allocation_count().load(std::memory_order_relaxed);
  }

 private:
  struct slot_storage {
    std::byte* bytes = nullptr;
    std::size_t capacity = 0;
  };

  [[nodiscard]] static std::atomic<std::uint64_t>& allocation_count() noexcept {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }

  slot_storage slots_[kArenaSlots];
};

}  // namespace dcmesh::blas::detail
