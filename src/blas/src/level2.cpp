#include "dcmesh/blas/level2.hpp"

#include <chrono>
#include <stdexcept>

#include "dcmesh/blas/verbose.hpp"

namespace dcmesh::blas {
namespace {

/// Verbose-record routine names per element type.
template <typename T>
struct gemv_traits {
  static constexpr const char* routine = "SGEMV";
  static constexpr bool is_complex = false;
};
template <>
struct gemv_traits<double> {
  static constexpr const char* routine = "DGEMV";
  static constexpr bool is_complex = false;
};
template <>
struct gemv_traits<std::complex<float>> {
  static constexpr const char* routine = "CGEMV";
  static constexpr bool is_complex = true;
};
template <>
struct gemv_traits<std::complex<double>> {
  static constexpr const char* routine = "ZGEMV";
  static constexpr bool is_complex = true;
};

template <typename T>
void validate_gemv(blas_int m, blas_int n, blas_int lda, blas_int incx,
                   blas_int incy) {
  if (m < 0 || n < 0) throw std::invalid_argument("gemv: negative dim");
  if (lda < std::max<blas_int>(1, m)) {
    throw std::invalid_argument("gemv: lda too small");
  }
  if (incx == 0 || incy == 0) {
    throw std::invalid_argument("gemv: zero increment");
  }
  (void)sizeof(T);
}

template <typename T>
constexpr T conj_if(T v, bool c) {
  if constexpr (std::is_floating_point_v<T>) {
    (void)c;
    return v;
  } else {
    return c ? std::conj(v) : v;
  }
}

/// The arithmetic of gemv, shared by the timed public wrapper.
template <typename T>
void gemv_apply(transpose trans, blas_int m, blas_int n, T alpha,
                const T* a, blas_int lda, const T* x, blas_int incx,
                T beta, T* y, blas_int incy) {
  const blas_int rows_y = trans == transpose::none ? m : n;
  const blas_int len_x = trans == transpose::none ? n : m;
  if (rows_y == 0) return;

  // y <- beta*y
  blas_int iy = incy > 0 ? 0 : (1 - rows_y) * incy;
  for (blas_int i = 0; i < rows_y; ++i, iy += incy) {
    y[iy] = beta == T(0) ? T(0) : beta * y[iy];
  }
  if (alpha == T(0) || len_x == 0) return;

  const bool conj_a = trans == transpose::conj_trans;
  if (trans == transpose::none) {
    // y += alpha * A x, column sweep (unit-stride down each column).
    blas_int jx = incx > 0 ? 0 : (1 - n) * incx;
    for (blas_int j = 0; j < n; ++j, jx += incx) {
      const T w = alpha * x[jx];
      const T* col = a + j * lda;
      blas_int iy2 = incy > 0 ? 0 : (1 - m) * incy;
      for (blas_int i = 0; i < m; ++i, iy2 += incy) y[iy2] += w * col[i];
    }
  } else {
    // y_j += alpha * sum_i op(A)_{j,i} x_i = alpha * dot(col_j, x).
    blas_int jy = incy > 0 ? 0 : (1 - n) * incy;
    for (blas_int j = 0; j < n; ++j, jy += incy) {
      const T* col = a + j * lda;
      T sum{};
      blas_int ix = incx > 0 ? 0 : (1 - m) * incx;
      for (blas_int i = 0; i < m; ++i, ix += incx) {
        sum += conj_if(col[i], conj_a) * x[ix];
      }
      y[jy] += alpha * sum;
    }
  }
}

}  // namespace

template <typename T>
void gemv(transpose trans, blas_int m, blas_int n, T alpha, const T* a,
          blas_int lda, const T* x, blas_int incx, T beta, T* y,
          blas_int incy, std::string_view call_site) {
  validate_gemv<T>(m, n, lda, incx, incy);

  const auto start = std::chrono::steady_clock::now();
  gemv_apply(trans, m, n, alpha, a, lda, x, incx, beta, y, incy);
  const auto stop = std::chrono::steady_clock::now();

  // Level 2 never changes arithmetic under compute modes, but interposed
  // projections/contractions belong in the per-site attribution exactly
  // like trsm/syrk: one record per call, mode fixed at standard.
  call_record record;
  record.routine = gemv_traits<T>::routine;
  record.transa = static_cast<char>(trans);
  record.transb = 'N';
  record.m = m;
  record.n = n;
  record.k = 0;
  record.lda = lda;
  record.ldb = incx;
  record.ldc = incy;
  record.seconds = std::chrono::duration<double>(stop - start).count();
  record.flops = (gemv_traits<T>::is_complex ? 8.0 : 2.0) * double(m) *
                 double(n);
  record.mode = compute_mode::standard;
  record.call_site = std::string(call_site);
  record.requested_mode = compute_mode::standard;
  record_call(std::move(record));
}

template <typename T>
void ger(blas_int m, blas_int n, T alpha, const T* x, blas_int incx,
         const T* y, blas_int incy, T* a, blas_int lda) {
  validate_gemv<T>(m, n, lda, incx, incy);
  if (m == 0 || n == 0 || alpha == T(0)) return;
  blas_int jy = incy > 0 ? 0 : (1 - n) * incy;
  for (blas_int j = 0; j < n; ++j, jy += incy) {
    const T w = alpha * y[jy];
    T* col = a + j * lda;
    blas_int ix = incx > 0 ? 0 : (1 - m) * incx;
    for (blas_int i = 0; i < m; ++i, ix += incx) col[i] += x[ix] * w;
  }
}

template <typename T>
void gerc(blas_int m, blas_int n, T alpha, const T* x, blas_int incx,
          const T* y, blas_int incy, T* a, blas_int lda) {
  validate_gemv<T>(m, n, lda, incx, incy);
  if (m == 0 || n == 0 || alpha == T(0)) return;
  blas_int jy = incy > 0 ? 0 : (1 - n) * incy;
  for (blas_int j = 0; j < n; ++j, jy += incy) {
    const T w = alpha * conj_if(y[jy], true);
    T* col = a + j * lda;
    blas_int ix = incx > 0 ? 0 : (1 - m) * incx;
    for (blas_int i = 0; i < m; ++i, ix += incx) col[i] += x[ix] * w;
  }
}

#define DCMESH_INSTANTIATE_LEVEL2(T)                                      \
  template void gemv<T>(transpose, blas_int, blas_int, T, const T*,       \
                        blas_int, const T*, blas_int, T, T*, blas_int,    \
                        std::string_view);                                \
  template void ger<T>(blas_int, blas_int, T, const T*, blas_int,         \
                       const T*, blas_int, T*, blas_int);                 \
  template void gerc<T>(blas_int, blas_int, T, const T*, blas_int,        \
                        const T*, blas_int, T*, blas_int);

DCMESH_INSTANTIATE_LEVEL2(float)
DCMESH_INSTANTIATE_LEVEL2(double)
DCMESH_INSTANTIATE_LEVEL2(std::complex<float>)
DCMESH_INSTANTIATE_LEVEL2(std::complex<double>)
#undef DCMESH_INSTANTIATE_LEVEL2

}  // namespace dcmesh::blas
