#include "split.hpp"

#include <atomic>

#include "gemm_kernel.hpp"

namespace dcmesh::blas::detail {

std::vector<matrix<float>> split_operand(const float* x, blas_int rows,
                                         blas_int cols, blas_int ld,
                                         split_spec spec) {
  std::vector<matrix<float>> components;
  components.reserve(static_cast<std::size_t>(spec.components));

  // residual starts as the exact input and loses one component per pass.
  matrix<float> residual(static_cast<std::size_t>(rows),
                         static_cast<std::size_t>(cols));
  for (blas_int j = 0; j < cols; ++j) {
    const float* src = x + j * ld;
    float* dst = residual.data() + j * rows;
    for (blas_int i = 0; i < rows; ++i) dst[i] = src[i];
  }

  for (int c = 0; c < spec.components; ++c) {
    matrix<float> comp(static_cast<std::size_t>(rows),
                       static_cast<std::size_t>(cols));
    float* comp_data = comp.data();
    float* res_data = residual.data();
    const std::size_t count = comp.size();
    const bool last = (c + 1 == spec.components);
    for (std::size_t i = 0; i < count; ++i) {
      const float rounded = spec.round(res_data[i]);
      comp_data[i] = rounded;
      if (!last) res_data[i] -= rounded;
    }
    components.push_back(std::move(comp));
  }
  return components;
}

namespace {

/// Inlinable component rounding (the function-pointer form in split_spec
/// is kept for the reference path; the fused pack loops must not pay an
/// indirect call per element).
template <round_kind K>
[[nodiscard]] inline float round_component(float x) noexcept {
  if constexpr (K == round_kind::bf16) {
    return round_to_bf16(x);
  } else {
    return round_to_tf32(x);
  }
}

/// Emit the component chain of one source element at packed offset `off`:
/// comp[c] = round(residual), residual -= comp[c] — the exact
/// split_operand recurrence, fused to a single pass.
template <round_kind K>
inline void write_components(float value, int ncomp, float* dst,
                             std::size_t comp_stride,
                             std::size_t off) noexcept {
  float residual = value;
  for (int c = 0; c < ncomp; ++c) {
    const float rounded = round_component<K>(residual);
    dst[static_cast<std::size_t>(c) * comp_stride + off] = rounded;
    residual -= rounded;
  }
}

template <round_kind K>
void pack_a_split_impl(const float* a, blas_int lda, transpose op,
                       blas_int row0, blas_int col0, blas_int mc,
                       blas_int kc, int ncomp, float* dst,
                       std::size_t comp_stride, int mr) {
  const blas_int strips = (mc + mr - 1) / mr;
  for (blas_int s = 0; s < strips; ++s) {
    const std::size_t strip_off =
        static_cast<std::size_t>(s) * (static_cast<std::size_t>(kc) * mr);
    const blas_int i0 = s * mr;
    const int rows = static_cast<int>(std::min<blas_int>(mr, mc - i0));
    for (blas_int p = 0; p < kc; ++p) {
      const std::size_t col_off = strip_off + static_cast<std::size_t>(p) * mr;
      for (int i = 0; i < rows; ++i) {
        write_components<K>(op_element(a, lda, op, row0 + i0 + i, col0 + p),
                            ncomp, dst, comp_stride, col_off + i);
      }
      for (int i = rows; i < mr; ++i) {
        for (int c = 0; c < ncomp; ++c) {
          dst[static_cast<std::size_t>(c) * comp_stride + col_off + i] = 0.0f;
        }
      }
    }
  }
}

template <round_kind K>
void pack_b_split_impl(const float* b, blas_int ldb, transpose op,
                       blas_int row0, blas_int col0, blas_int kc,
                       blas_int nc, int ncomp, float* dst,
                       std::size_t comp_stride, int nr, bool parallel) {
  const blas_int strips = (nc + nr - 1) / nr;
#if defined(DCMESH_HAVE_OPENMP)
#pragma omp parallel for schedule(static)                  \
    if (parallel && ncomp * kc * nc >=                     \
                        pack_parallel_min_elems(active_kernel_isa()))
#else
  (void)parallel;
#endif
  for (blas_int s = 0; s < strips; ++s) {
    const std::size_t strip_off =
        static_cast<std::size_t>(s) * (static_cast<std::size_t>(kc) * nr);
    const blas_int j0 = s * nr;
    const int cols = static_cast<int>(std::min<blas_int>(nr, nc - j0));
    for (blas_int p = 0; p < kc; ++p) {
      const std::size_t row_off = strip_off + static_cast<std::size_t>(p) * nr;
      for (int j = 0; j < cols; ++j) {
        write_components<K>(op_element(b, ldb, op, row0 + p, col0 + j0 + j),
                            ncomp, dst, comp_stride, row_off + j);
      }
      for (int j = cols; j < nr; ++j) {
        for (int c = 0; c < ncomp; ++c) {
          dst[static_cast<std::size_t>(c) * comp_stride + row_off + j] = 0.0f;
        }
      }
    }
  }
}

}  // namespace

void pack_a_split(const float* a, blas_int lda, transpose op, blas_int row0,
                  blas_int col0, blas_int mc, blas_int kc,
                  const split_spec& spec, float* dst,
                  std::size_t comp_stride, int mr) {
  if (spec.kind == round_kind::bf16) {
    pack_a_split_impl<round_kind::bf16>(a, lda, op, row0, col0, mc, kc,
                                        spec.components, dst, comp_stride,
                                        mr);
  } else {
    pack_a_split_impl<round_kind::tf32>(a, lda, op, row0, col0, mc, kc,
                                        spec.components, dst, comp_stride,
                                        mr);
  }
}

void pack_b_split(const float* b, blas_int ldb, transpose op, blas_int row0,
                  blas_int col0, blas_int kc, blas_int nc,
                  const split_spec& spec, float* dst,
                  std::size_t comp_stride, int nr, bool parallel) {
  if (spec.kind == round_kind::bf16) {
    pack_b_split_impl<round_kind::bf16>(b, ldb, op, row0, col0, kc, nc,
                                        spec.components, dst, comp_stride,
                                        nr, parallel);
  } else {
    pack_b_split_impl<round_kind::tf32>(b, ldb, op, row0, col0, kc, nc,
                                        spec.components, dst, comp_stride,
                                        nr, parallel);
  }
}

void sgemm_split_reference(compute_mode mode, transpose transa,
                           transpose transb, blas_int m, blas_int n,
                           blas_int k, float alpha, const float* a,
                           blas_int lda, const float* b, blas_int ldb,
                           float beta, float* c, blas_int ldc) {
  validate_gemm_args(transa, transb, m, n, k, a, lda, b, ldb, c, ldc,
                     /*needs_ab=*/alpha != 0.0f);
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0f) return;

  const split_spec spec = split_for(mode);
  const blas_int rows_a = transa == transpose::none ? m : k;
  const blas_int cols_a = transa == transpose::none ? k : m;
  const blas_int rows_b = transb == transpose::none ? k : n;
  const blas_int cols_b = transb == transpose::none ? n : k;

  const auto a_comp = split_operand(a, rows_a, cols_a, lda, spec);
  const auto b_comp = split_operand(b, rows_b, cols_b, ldb, spec);

  for (const auto& [i, j] : retained_products(spec.components)) {
    gemm_blocked_accumulate(transa, transb, m, n, k, alpha,
                            a_comp[static_cast<std::size_t>(i)].data(),
                            rows_a,
                            b_comp[static_cast<std::size_t>(j)].data(),
                            rows_b, c, ldc);
  }
}

std::vector<std::pair<int, int>> retained_products(int components) {
  std::vector<std::pair<int, int>> pairs;
  for (int order = 0; order <= components - 1; ++order) {
    for (int i = 0; i <= order; ++i) {
      pairs.emplace_back(i, order - i);
    }
  }
  return pairs;
}

namespace {

std::atomic<bool> g_profiling{false};
std::atomic<std::uint64_t> g_profile_calls{0};
// Nanosecond totals (atomic integers; doubles would need a CAS loop).
std::atomic<std::int64_t> g_pack_a_ns{0};
std::atomic<std::int64_t> g_pack_b_ns{0};
std::atomic<std::int64_t> g_compute_ns{0};

[[nodiscard]] std::int64_t to_ns(double seconds) noexcept {
  return static_cast<std::int64_t>(seconds * 1e9);
}

}  // namespace

void set_split_profiling(bool enabled) noexcept {
  g_profiling.store(enabled, std::memory_order_relaxed);
}

bool split_profiling_enabled() noexcept {
  return g_profiling.load(std::memory_order_relaxed);
}

split_profile split_profile_snapshot() noexcept {
  split_profile p;
  p.calls = g_profile_calls.load(std::memory_order_relaxed);
  p.pack_a_seconds = g_pack_a_ns.load(std::memory_order_relaxed) * 1e-9;
  p.pack_b_seconds = g_pack_b_ns.load(std::memory_order_relaxed) * 1e-9;
  p.compute_seconds = g_compute_ns.load(std::memory_order_relaxed) * 1e-9;
  return p;
}

void reset_split_profile() noexcept {
  g_profile_calls.store(0, std::memory_order_relaxed);
  g_pack_a_ns.store(0, std::memory_order_relaxed);
  g_pack_b_ns.store(0, std::memory_order_relaxed);
  g_compute_ns.store(0, std::memory_order_relaxed);
}

void split_profile_add(double pack_a_s, double pack_b_s,
                       double compute_s) noexcept {
  g_profile_calls.fetch_add(1, std::memory_order_relaxed);
  g_pack_a_ns.fetch_add(to_ns(pack_a_s), std::memory_order_relaxed);
  g_pack_b_ns.fetch_add(to_ns(pack_b_s), std::memory_order_relaxed);
  g_compute_ns.fetch_add(to_ns(compute_s), std::memory_order_relaxed);
}

}  // namespace dcmesh::blas::detail
