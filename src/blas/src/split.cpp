#include "split.hpp"

namespace dcmesh::blas::detail {

std::vector<matrix<float>> split_operand(const float* x, blas_int rows,
                                         blas_int cols, blas_int ld,
                                         split_spec spec) {
  std::vector<matrix<float>> components;
  components.reserve(static_cast<std::size_t>(spec.components));

  // residual starts as the exact input and loses one component per pass.
  matrix<float> residual(static_cast<std::size_t>(rows),
                         static_cast<std::size_t>(cols));
  for (blas_int j = 0; j < cols; ++j) {
    const float* src = x + j * ld;
    float* dst = residual.data() + j * rows;
    for (blas_int i = 0; i < rows; ++i) dst[i] = src[i];
  }

  for (int c = 0; c < spec.components; ++c) {
    matrix<float> comp(static_cast<std::size_t>(rows),
                       static_cast<std::size_t>(cols));
    float* comp_data = comp.data();
    float* res_data = residual.data();
    const std::size_t count = comp.size();
    const bool last = (c + 1 == spec.components);
    for (std::size_t i = 0; i < count; ++i) {
      const float rounded = spec.round(res_data[i]);
      comp_data[i] = rounded;
      if (!last) res_data[i] -= rounded;
    }
    components.push_back(std::move(comp));
  }
  return components;
}

std::vector<std::pair<int, int>> retained_products(int components) {
  std::vector<std::pair<int, int>> pairs;
  for (int order = 0; order <= components - 1; ++order) {
    for (int i = 0; i <= order; ++i) {
      pairs.emplace_back(i, order - i);
    }
  }
  return pairs;
}

}  // namespace dcmesh::blas::detail
