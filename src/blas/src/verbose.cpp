#include "dcmesh/blas/verbose.hpp"

#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>

#include "dcmesh/common/env.hpp"

namespace dcmesh::blas {
namespace {

constexpr std::size_t kMaxLogEntries = 16384;

std::mutex g_log_mutex;
std::deque<call_record> g_log;            // guarded by g_log_mutex
std::atomic<std::uint64_t> g_call_count{0};
std::mutex g_seconds_mutex;
double g_total_seconds = 0.0;             // guarded by g_seconds_mutex

}  // namespace

std::string call_record::to_string() const {
  // Mirrors the oneMKL verbose format:
  // MKL_VERBOSE SGEMM(N,N,128,896,262144,...) 12.34ms CNR:OFF ... mode:BF16
  char buffer[256];
  const double ms = seconds * 1e3;
  std::snprintf(buffer, sizeof(buffer),
                "MKL_VERBOSE %s(%c,%c,%lld,%lld,%lld) lda=%lld ldb=%lld "
                "ldc=%lld %.3fms mode:%s",
                routine.c_str(), transa, transb,
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), static_cast<long long>(lda),
                static_cast<long long>(ldb), static_cast<long long>(ldc), ms,
                std::string(info(mode).env_token).c_str());
  return buffer;
}

bool verbose_enabled() { return env_get_int(kVerboseEnvVar, 0) >= 1; }

void record_call(call_record record) {
  if (verbose_enabled()) {
    std::fprintf(stderr, "%s\n", record.to_string().c_str());
  }
  g_call_count.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(g_seconds_mutex);
    g_total_seconds += record.seconds;
  }
  std::lock_guard lock(g_log_mutex);
  g_log.push_back(std::move(record));
  if (g_log.size() > kMaxLogEntries) g_log.pop_front();
}

std::vector<call_record> recent_calls() {
  std::lock_guard lock(g_log_mutex);
  return {g_log.begin(), g_log.end()};
}

std::uint64_t call_count() {
  return g_call_count.load(std::memory_order_relaxed);
}

double total_call_seconds() {
  std::lock_guard lock(g_seconds_mutex);
  return g_total_seconds;
}

void clear_call_log() {
  {
    std::lock_guard lock(g_log_mutex);
    g_log.clear();
  }
  {
    std::lock_guard lock(g_seconds_mutex);
    g_total_seconds = 0.0;
  }
  g_call_count.store(0, std::memory_order_relaxed);
}

}  // namespace dcmesh::blas
