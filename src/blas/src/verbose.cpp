#include "dcmesh/blas/verbose.hpp"

#include <atomic>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace dcmesh::blas {
namespace {

/// Bytes of one element of the routine's type, from the BLAS prefix
/// letter (SGEMM -> 4, DGEMM/CGEMM -> 8, ZGEMM -> 16).
std::size_t element_bytes(std::string_view routine) noexcept {
  if (routine.empty()) return 4;
  switch (routine.front()) {
    case 'D': case 'C': return 8;
    case 'Z': return 16;
    default: return 4;
  }
}

constexpr std::size_t kMaxLogEntries = 16384;

std::mutex g_log_mutex;
std::deque<call_record> g_log;            // guarded by g_log_mutex
std::atomic<std::uint64_t> g_call_count{0};
std::mutex g_seconds_mutex;
double g_total_seconds = 0.0;             // guarded by g_seconds_mutex

// JSONL sink: lazily opened append stream, reopened when the env value
// changes (tests point MKL_VERBOSE_JSON at per-case temp files).
std::mutex g_json_mutex;
std::string g_json_path;                  // guarded by g_json_mutex
std::ofstream g_json_stream;              // guarded by g_json_mutex
bool g_json_warned = false;               // guarded by g_json_mutex

/// Minimal JSON string escaping (sites/routines are plain tags, but be
/// safe about quotes, backslashes, and control bytes).
void append_json_escaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
}

void write_json_line(const call_record& record) {
  const auto path = env_get(kVerboseJsonEnvVar);
  if (!path) return;
  std::lock_guard lock(g_json_mutex);
  if (*path != g_json_path) {
    g_json_stream.close();
    g_json_stream.clear();
    g_json_stream.open(*path, std::ios::app);
    g_json_path = *path;
    g_json_warned = false;
  }
  if (!g_json_stream) {
    // Unwritable sink must not abort the run: one clear warning per path,
    // then records keep flowing to the in-process log only.
    if (!g_json_warned) {
      std::fprintf(stderr,
                   "dcmesh: cannot write %s file \"%s\"; per-call JSON "
                   "records disabled\n",
                   std::string(kVerboseJsonEnvVar).c_str(), path->c_str());
      g_json_warned = true;
    }
    return;
  }
  g_json_stream << record.to_json() << '\n' << std::flush;
}

}  // namespace

std::string_view name(fallback_verdict verdict) noexcept {
  switch (verdict) {
    case fallback_verdict::none: return "none";
    case fallback_verdict::passed: return "passed";
    case fallback_verdict::promoted: return "promoted";
  }
  return "none";
}

std::string_view name(health_verdict verdict) noexcept {
  switch (verdict) {
    case health_verdict::none: return "none";
    case health_verdict::clean: return "clean";
    case health_verdict::detected: return "detected";
    case health_verdict::recovered: return "recovered";
  }
  return "none";
}

std::string_view name(abft_verdict verdict) noexcept {
  switch (verdict) {
    case abft_verdict::none: return "none";
    case abft_verdict::checked: return "checked";
    case abft_verdict::detected: return "detected";
    case abft_verdict::corrected: return "corrected";
    case abft_verdict::recovered: return "recovered";
    case abft_verdict::failed: return "failed";
  }
  return "none";
}

std::string call_record::to_string() const {
  // Mirrors the oneMKL verbose format:
  // MKL_VERBOSE SGEMM(N,N,128,896,262144,...) 12.34ms CNR:OFF ... mode:BF16
  // Policy-engine fields are appended after the MKL-compatible prefix so
  // existing MKL_VERBOSE parsers keep working on tagged calls too.
  char buffer[256];
  const double ms = seconds * 1e3;
  std::snprintf(buffer, sizeof(buffer),
                "MKL_VERBOSE %s(%c,%c,%lld,%lld,%lld) lda=%lld ldb=%lld "
                "ldc=%lld %.3fms mode:%s",
                routine.c_str(), transa, transb,
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), static_cast<long long>(lda),
                static_cast<long long>(ldb), static_cast<long long>(ldc), ms,
                std::string(info(mode).env_token).c_str());
  std::string line = buffer;
  if (!call_site.empty()) {
    line += " site:";
    line += call_site;
    line += " src:";
    line += name(source);
  }
  if (tune != auto_provenance::none) {
    line += " tune:";
    line += name(tune);
  }
  if (fallback != fallback_verdict::none) {
    std::snprintf(buffer, sizeof(buffer),
                  " fallback:%s(resid=%.3e,attempts=%d,from=%s)",
                  std::string(name(fallback)).c_str(), guard_residual,
                  attempts,
                  std::string(info(requested_mode).env_token).c_str());
    line += buffer;
  }
  if (!fault.empty()) {
    line += " fault:";
    line += fault;
  }
  // "clean" on every scanned call would drown the log; only surface the
  // interesting verdicts in the text line (JSON carries all of them).
  if (health == health_verdict::detected ||
      health == health_verdict::recovered) {
    line += " health:";
    line += name(health);
  }
  if (abft != abft_verdict::none && abft != abft_verdict::checked) {
    line += " abft:";
    line += name(abft);
  }
  return line;
}

std::string call_record::to_json() const {
  std::string out = "{\"routine\":\"";
  append_json_escaped(out, routine);
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\",\"transa\":\"%c\",\"transb\":\"%c\",\"m\":%lld,"
                "\"n\":%lld,\"k\":%lld,\"lda\":%lld,\"ldb\":%lld,"
                "\"ldc\":%lld,\"seconds\":%.9g,\"flops\":%.9g,",
                transa, transb, static_cast<long long>(m),
                static_cast<long long>(n), static_cast<long long>(k),
                static_cast<long long>(lda), static_cast<long long>(ldb),
                static_cast<long long>(ldc), seconds, flops);
  out += buffer;
  out += "\"mode\":\"";
  out += info(mode).env_token;
  out += "\",\"site\":\"";
  append_json_escaped(out, call_site);
  out += "\",\"source\":\"";
  out += name(source);
  out += "\",\"requested_mode\":\"";
  out += info(requested_mode).env_token;
  out += "\",\"fallback\":\"";
  out += name(fallback);
  if (tune != auto_provenance::none) {
    out += "\",\"tune\":\"";
    out += name(tune);
  }
  if (!fault.empty()) {
    out += "\",\"fault\":\"";
    append_json_escaped(out, fault);
  }
  if (health != health_verdict::none) {
    out += "\",\"health\":\"";
    out += name(health);
  }
  if (abft != abft_verdict::none) {
    out += "\",\"abft\":\"";
    out += name(abft);
  }
  std::snprintf(buffer, sizeof(buffer),
                "\",\"residual\":%.9g,\"attempts\":%d}", guard_residual,
                attempts);
  out += buffer;
  return out;
}

bool verbose_enabled() { return env_get_int(kVerboseEnvVar, 0) >= 1; }

void record_call(call_record record) {
  if (verbose_enabled()) {
    std::fprintf(stderr, "%s\n", record.to_string().c_str());
  }
  write_json_line(record);
  // Feed the per-site counter registry: operand traffic is A + B plus C
  // read and written (the roofline's streaming assumption).
  const double bytes = gemm_bytes(record.m, record.n, record.k,
                                  element_bytes(record.routine));
  trace::record_gemm_metrics(record.call_site, record.routine,
                             info(record.mode).env_token, record.flops,
                             bytes, record.seconds,
                             record.fallback == fallback_verdict::promoted,
                             record.tune == auto_provenance::none
                                 ? std::string_view{}
                                 : name(record.tune));
  g_call_count.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(g_seconds_mutex);
    g_total_seconds += record.seconds;
  }
  std::lock_guard lock(g_log_mutex);
  g_log.push_back(std::move(record));
  if (g_log.size() > kMaxLogEntries) g_log.pop_front();
}

std::vector<call_record> recent_calls() {
  std::lock_guard lock(g_log_mutex);
  return {g_log.begin(), g_log.end()};
}

std::uint64_t call_count() {
  return g_call_count.load(std::memory_order_relaxed);
}

double total_call_seconds() {
  std::lock_guard lock(g_seconds_mutex);
  return g_total_seconds;
}

void clear_call_log() {
  {
    std::lock_guard lock(g_log_mutex);
    g_log.clear();
  }
  {
    std::lock_guard lock(g_seconds_mutex);
    g_total_seconds = 0.0;
  }
  g_call_count.store(0, std::memory_order_relaxed);
}

}  // namespace dcmesh::blas
