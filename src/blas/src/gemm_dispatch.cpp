// gemm_dispatch.cpp — the single choke point behind every GEMM descriptor.
//
// run(gemm_call<T>) resolves the call's effective compute mode through the
// precision policy engine (consulting the auto_tune_hook when an AUTO rule
// matched), executes the arithmetic via the per-type gemm_at_mode
// overloads, optionally applies the accuracy-guarded fallback (row-sampled
// residual check against a same-precision standard reference, with
// transparent promotion to the next-higher mode on failure), and logs one
// verbose record carrying the site, the resolved mode, the auto-decision
// provenance, and the guard verdict.
//
// The resilience subsystem (src/resil) hooks the same choke point:
// plan_call() overlays any active precision promotion on the resolved
// mode; an active DCMESH_FAULT_PLAN may perturb the call (deterministic
// injection — input-space kinds corrupt the operands the kernel consumes,
// output kinds the result), and a non-off DCMESH_HEALTH level
// finite-scans it — on detection the call is transparently re-run up the
// mantissa-promotion ladder (one same-mode retry once at standard, since
// a transient fault does not repeat), and the verdict lands in the
// verbose record, the metrics registry, and the trace.
//
// ABFT (resil/abft.hpp) rides the same choke point for real GEMM: when
// the resolved abft mode is not off, the call runs on Huang–Abraham
// checksum-augmented operands — op(A) gains a column-checksum row (e·A),
// op(B) a row-checksum column (B·e) — through the *unchanged* blocked
// kernel at the resolved compute mode.  kBlockK partitions the k
// accumulation identically for the (m+1)x(n+1) and the m x n problem and
// MC/NC only partition the output sweep, so the augmented interior is
// bit-identical to the plain result; the extra row/column carries the
// sums.  Verification compares interior row/column sums (in double)
// against the checksum row/column under a per-mode threshold derived from
// the split-engine error model; a single bad row x column locates one
// corrupted element, which abft=correct repairs in place via the
// residual delta + bitflip snap; anything ambiguous escalates to a
// rebuilt re-run and then up the mantissa ladder.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/resil/abft.hpp"
#include "dcmesh/resil/fault_plan.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/resil/promotion.hpp"
#include "dcmesh/trace/metrics.hpp"
#include "dcmesh/trace/tracer.hpp"
#include "dispatch_internal.hpp"
#include "gemm_kernel.hpp"
#include "gemm_modes.hpp"
#include "split.hpp"

namespace dcmesh::blas {
namespace detail {
namespace {

/// The mode recorded (and executed) for element type T.  Mirrors the
/// pre-descriptor entry points: float/complex<float> records the resolved
/// mode as-is (even when it is a no-op, like COMPLEX_3M on sgemm), real
/// double is always standard, complex double keeps only COMPLEX_3M.
template <typename T>
constexpr compute_mode effective_mode(compute_mode mode) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    (void)mode;
    return compute_mode::standard;
  } else if constexpr (std::is_same_v<T, std::complex<double>>) {
    return mode == compute_mode::complex_3m ? compute_mode::complex_3m
                                            : compute_mode::standard;
  } else {
    return mode;
  }
}

/// True when `mode` changes T's arithmetic vs standard — i.e. when a
/// guard check is meaningful.
template <typename T>
constexpr bool mode_alters_arithmetic(compute_mode mode) noexcept {
  if constexpr (std::is_same_v<T, float>) {
    return is_split_mode(mode);
  } else if constexpr (std::is_same_v<T, std::complex<float>>) {
    return is_split_mode(mode) || mode == compute_mode::complex_3m;
  } else if constexpr (std::is_same_v<T, std::complex<double>>) {
    return mode == compute_mode::complex_3m;
  } else {
    (void)mode;
    return false;
  }
}

/// Rows of C the guard samples: up to kGuardSampleRows evenly strided
/// rows (deterministic — guarded runs must stay reproducible).
inline constexpr blas_int kGuardSampleRows = 8;

std::vector<blas_int> guard_sample_rows(blas_int m) {
  const blas_int stride = std::max<blas_int>(1, m / kGuardSampleRows);
  std::vector<blas_int> rows;
  for (blas_int i = 0;
       i < m && rows.size() < static_cast<std::size_t>(kGuardSampleRows);
       i += stride) {
    rows.push_back(i);
  }
  return rows;
}

/// Relative Frobenius residual of the low-precision result against a
/// standard-arithmetic reference computed for the sampled rows only, in
/// T's own precision (the "FP32 reference" for the float paths).
/// `c_orig` holds the pre-call C, packed m x n column-major.
template <typename T>
double sampled_residual(const gemm_call<T>& call,
                        const std::vector<T>& c_orig,
                        const std::vector<blas_int>& rows) {
  double num = 0.0, den = 0.0;
  for (const blas_int i : rows) {
    for (blas_int j = 0; j < call.n; ++j) {
      T acc = T(0);
      for (blas_int p = 0; p < call.k; ++p) {
        acc += op_element(call.a, call.lda, call.transa, i, p) *
               op_element(call.b, call.ldb, call.transb, p, j);
      }
      const T ref = call.alpha * acc +
                    call.beta * c_orig[static_cast<std::size_t>(
                                    i + j * call.m)];
      const T got = call.c[i + j * call.ldc];
      const double diff = std::abs(got - ref);
      num += diff * diff;
      const double mag = std::abs(ref);
      den += mag * mag;
    }
  }
  if (num == 0.0) return 0.0;
  constexpr double kTinyDen = 1e-300;
  return std::sqrt(num) / std::sqrt(std::max(den, kTinyDen));
}

template <typename T>
void restore_c(const gemm_call<T>& call, const std::vector<T>& c_orig) {
  for (blas_int j = 0; j < call.n; ++j) {
    std::copy_n(c_orig.data() + static_cast<std::size_t>(j) * call.m,
                call.m, call.c + j * call.ldc);
  }
}

template <typename T>
void run_at(compute_mode mode, const gemm_call<T>& call) {
  gemm_at_mode(mode, call.transa, call.transb, call.m, call.n, call.k,
               call.alpha, call.a, call.lda, call.b, call.ldb, call.beta,
               call.c, call.ldc);
}

// ---- resilience: fault application + finite scan ----------------------

template <typename T>
struct real_part_of {
  using type = T;
};
template <typename R>
struct real_part_of<std::complex<R>> {
  using type = R;
};

template <typename T>
bool element_finite(const T& v) noexcept {
  if constexpr (gemm_traits<T>::is_complex) {
    return std::isfinite(v.real()) && std::isfinite(v.imag());
  } else {
    return std::isfinite(v);
  }
}

template <typename Real>
void flip_bit(Real* slot, unsigned bit) noexcept {
  if constexpr (sizeof(Real) == 4) {
    std::uint32_t repr;
    std::memcpy(&repr, slot, sizeof(repr));
    repr ^= std::uint32_t{1} << bit;
    std::memcpy(slot, &repr, sizeof(repr));
  } else {
    std::uint64_t repr;
    std::memcpy(&repr, slot, sizeof(repr));
    repr ^= std::uint64_t{1} << bit;
    std::memcpy(slot, &repr, sizeof(repr));
  }
}

/// Apply one planned output-space fault to an m x n column-major matrix
/// in place, returning the description that goes into the verbose record
/// and the trace ("nan@(3,7)", "bitflip@(0,2):b12", "scale*1024").
/// Element/bit choices come from the hit's deterministic draw stream;
/// element kinds apply `hits` times (fresh draws per hit) and perturb the
/// real part (std::complex guarantees the two-reals layout).
template <typename T>
std::string apply_fault_to(const resil::fault_hit& hit, T* c, blas_int ldc,
                           blas_int m, blas_int n) {
  using real_t = typename real_part_of<T>::type;
  const std::size_t mn =
      static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  if (mn == 0) return {};
  char buffer[96];
  if (hit.kind == resil::fault_kind::scale) {
    const double factor = hit.param.value_or(1024.0);
    for (blas_int j = 0; j < n; ++j) {
      for (blas_int i = 0; i < m; ++i) {
        c[i + j * ldc] *= static_cast<real_t>(factor);
      }
    }
    std::snprintf(buffer, sizeof(buffer), "scale*%g", factor);
    return buffer;
  }
  // The stream's first two draws reproduce pick0/pick1, so single-hit
  // plans perturb the exact element/bit they always did.
  xoshiro256 rng(hit.draw_seed);
  std::string desc;
  const std::int64_t hits = std::max<std::int64_t>(1, hit.hits);
  for (std::int64_t h = 0; h < hits; ++h) {
    const std::uint64_t pick0 = rng();
    const std::uint64_t pick1 = rng();
    const std::size_t idx = pick0 % mn;
    const blas_int i =
        static_cast<blas_int>(idx % static_cast<std::size_t>(m));
    const blas_int j =
        static_cast<blas_int>(idx / static_cast<std::size_t>(m));
    real_t* slot = reinterpret_cast<real_t*>(c + (i + j * ldc));
    switch (hit.kind) {
      case resil::fault_kind::nan_value:
        *slot = std::numeric_limits<real_t>::quiet_NaN();
        std::snprintf(buffer, sizeof(buffer), "nan@(%lld,%lld)",
                      static_cast<long long>(i), static_cast<long long>(j));
        break;
      case resil::fault_kind::inf_value:
        *slot = std::numeric_limits<real_t>::infinity();
        std::snprintf(buffer, sizeof(buffer), "inf@(%lld,%lld)",
                      static_cast<long long>(i), static_cast<long long>(j));
        break;
      case resil::fault_kind::bitflip: {
        constexpr unsigned kBits = sizeof(real_t) * 8;
        const unsigned bit =
            hit.param ? static_cast<unsigned>(*hit.param) % kBits
                      : static_cast<unsigned>(pick1 % kBits);
        flip_bit(slot, bit);
        std::snprintf(buffer, sizeof(buffer), "bitflip@(%lld,%lld):b%u",
                      static_cast<long long>(i), static_cast<long long>(j),
                      bit);
        break;
      }
      default:
        return desc;  // input-space kinds handled by apply_input_fault
    }
    if (!desc.empty()) desc += '+';
    desc += buffer;
  }
  return desc;
}

template <typename T>
std::string apply_fault(const resil::fault_hit& hit,
                        const gemm_call<T>& call) {
  return apply_fault_to(hit, call.c, call.ldc, call.m, call.n);
}

/// Apply one planned input-space fault (bitflip_a / bitflip_b) to a
/// materialized rows x cols column-major copy of op(A) or op(B).  The
/// draws come from the hit's stream exactly like the output kinds, so a
/// given (seed, rule, occurrence) corrupts the same operand element
/// whether or not ABFT is active.
template <typename T>
std::string apply_input_fault(const resil::fault_hit& hit, T* mat,
                              blas_int ld, blas_int rows, blas_int cols) {
  using real_t = typename real_part_of<T>::type;
  const std::size_t total =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (total == 0) return {};
  const char* tag =
      hit.kind == resil::fault_kind::bitflip_a ? "bitflip_a" : "bitflip_b";
  xoshiro256 rng(hit.draw_seed);
  std::string desc;
  char buffer[96];
  const std::int64_t hits = std::max<std::int64_t>(1, hit.hits);
  for (std::int64_t h = 0; h < hits; ++h) {
    const std::uint64_t pick0 = rng();
    const std::uint64_t pick1 = rng();
    const std::size_t idx = pick0 % total;
    const blas_int i =
        static_cast<blas_int>(idx % static_cast<std::size_t>(rows));
    const blas_int j =
        static_cast<blas_int>(idx / static_cast<std::size_t>(rows));
    constexpr unsigned kBits = sizeof(real_t) * 8;
    const unsigned bit = hit.param
                             ? static_cast<unsigned>(*hit.param) % kBits
                             : static_cast<unsigned>(pick1 % kBits);
    flip_bit(reinterpret_cast<real_t*>(mat + (i + j * ld)), bit);
    std::snprintf(buffer, sizeof(buffer), "%s@(%lld,%lld):b%u", tag,
                  static_cast<long long>(i), static_cast<long long>(j),
                  bit);
    if (!desc.empty()) desc += '+';
    desc += buffer;
  }
  return desc;
}

/// Finite scan of C at the given level.  At `sample` the scan strides so
/// that at most kSampleScanElems elements are touched (deterministic —
/// a single flipped element may escape a sampled scan; the step-level
/// invariants are the backstop).  Returns false and the offending (i,j)
/// on the first non-finite element.
template <typename T>
bool scan_c_finite(const gemm_call<T>& call, resil::health_level level,
                   blas_int* bad_i, blas_int* bad_j) {
  const std::size_t mn = static_cast<std::size_t>(call.m) *
                         static_cast<std::size_t>(call.n);
  std::size_t stride = 1;
  if (level == resil::health_level::sample &&
      mn > resil::kSampleScanElems) {
    stride = (mn + resil::kSampleScanElems - 1) / resil::kSampleScanElems;
  }
  for (std::size_t idx = 0; idx < mn; idx += stride) {
    const blas_int i =
        static_cast<blas_int>(idx % static_cast<std::size_t>(call.m));
    const blas_int j =
        static_cast<blas_int>(idx / static_cast<std::size_t>(call.m));
    if (!element_finite(call.c[i + j * call.ldc])) {
      *bad_i = i;
      *bad_j = j;
      return false;
    }
  }
  return true;
}

// ---- ABFT: checksum-augmented execution at the choke point ------------

/// Per-mode rounding units for the τ derivation.  u_repr is the
/// *effective* representation unit of the mode's operand encoding (the
/// split modes keep the sum of their components: BF16x2 ~16 bits, BF16x3
/// ~24); u_acc is the kernel's accumulator unit (FP32/FP64).
template <typename T>
resil::abft_error_model abft_model_for(compute_mode mode) noexcept {
  resil::abft_error_model model;
  if constexpr (std::is_same_v<T, double>) {
    (void)mode;
    model.u_repr = 0x1p-53;
    model.u_acc = 0x1p-53;
  } else {
    model.u_acc = 0x1p-24;
    switch (mode) {
      case compute_mode::float_to_bf16: model.u_repr = 0x1p-8; break;
      case compute_mode::float_to_tf32: model.u_repr = 0x1p-11; break;
      case compute_mode::float_to_bf16x2: model.u_repr = 0x1p-16; break;
      default: model.u_repr = 0x1p-24; break;  // standard, BF16x3
    }
  }
  return model;
}

/// Materialize the checksum-augmented operands: a_aug is (m+1) x k dense
/// column-major (interior = op(A), row m = column sums e·A), b_aug is
/// k x (n+1) (interior = op(B), column n = row sums B·e).  Checksums are
/// accumulated in double and rounded once to T; the interior values are
/// the exact operand values, so the kernel's interior arithmetic is
/// bit-identical to the plain call.  Returns amax of each interior for
/// the threshold scale.
template <typename T>
void build_augmented_operands(const gemm_call<T>& call, std::vector<T>& a_aug,
                              std::vector<T>& b_aug, double* amax_a,
                              double* amax_b) {
  const blas_int m = call.m, n = call.n, k = call.k;
  const blas_int lda_aug = m + 1;
  a_aug.resize(static_cast<std::size_t>(lda_aug) *
               static_cast<std::size_t>(k));
  double amax = 0.0;
  for (blas_int p = 0; p < k; ++p) {
    T* col = a_aug.data() + static_cast<std::size_t>(p) * lda_aug;
    double sum = 0.0;
    for (blas_int i = 0; i < m; ++i) {
      const T v = op_element(call.a, call.lda, call.transa, i, p);
      col[i] = v;
      sum += static_cast<double>(v);
      amax = std::max(amax, std::abs(static_cast<double>(v)));
    }
    col[m] = static_cast<T>(sum);
  }
  *amax_a = amax;

  b_aug.resize(static_cast<std::size_t>(k) *
               static_cast<std::size_t>(n + 1));
  amax = 0.0;
  std::vector<double> row_sums(static_cast<std::size_t>(k), 0.0);
  for (blas_int j = 0; j < n; ++j) {
    T* col = b_aug.data() + static_cast<std::size_t>(j) * k;
    for (blas_int p = 0; p < k; ++p) {
      const T v = op_element(call.b, call.ldb, call.transb, p, j);
      col[p] = v;
      row_sums[static_cast<std::size_t>(p)] += static_cast<double>(v);
      amax = std::max(amax, std::abs(static_cast<double>(v)));
    }
  }
  T* chk = b_aug.data() + static_cast<std::size_t>(n) * k;
  for (blas_int p = 0; p < k; ++p) {
    chk[p] = static_cast<T>(row_sums[static_cast<std::size_t>(p)]);
  }
  *amax_b = amax;
}

/// Seed the (m+1) x (n+1) augmented result: interior = pre-call C, the
/// checksum row/column = C's column/row sums (in double, rounded to T) so
/// the kernel's beta term scales the checksums consistently with the
/// interior.  Returns amax of the interior for the β threshold term
/// (0 when beta == 0, where the seeds are ignored by the kernel).
template <typename T>
double seed_augmented_c(const gemm_call<T>& call, std::vector<T>& c_aug) {
  const blas_int m = call.m, n = call.n, ldc_aug = m + 1;
  c_aug.assign(static_cast<std::size_t>(ldc_aug) *
                   static_cast<std::size_t>(n + 1),
               T(0));
  if (call.beta == T(0)) return 0.0;
  double amax = 0.0;
  double total = 0.0;
  std::vector<double> row_sums(static_cast<std::size_t>(m), 0.0);
  for (blas_int j = 0; j < n; ++j) {
    T* col = c_aug.data() + static_cast<std::size_t>(j) * ldc_aug;
    double col_sum = 0.0;
    for (blas_int i = 0; i < m; ++i) {
      const T v = call.c[i + j * call.ldc];
      col[i] = v;
      col_sum += static_cast<double>(v);
      row_sums[static_cast<std::size_t>(i)] += static_cast<double>(v);
      amax = std::max(amax, std::abs(static_cast<double>(v)));
    }
    col[m] = static_cast<T>(col_sum);
    total += col_sum;
  }
  T* last = c_aug.data() + static_cast<std::size_t>(n) * ldc_aug;
  for (blas_int i = 0; i < m; ++i) {
    last[i] = static_cast<T>(row_sums[static_cast<std::size_t>(i)]);
  }
  last[m] = static_cast<T>(total);
  return amax;
}

/// Copy the augmented interior back into the caller's C.
template <typename T>
void copy_interior(const std::vector<T>& c_aug, const gemm_call<T>& call) {
  const blas_int ldc_aug = call.m + 1;
  for (blas_int j = 0; j < call.n; ++j) {
    std::copy_n(c_aug.data() + static_cast<std::size_t>(j) * ldc_aug,
                call.m, call.c + j * call.ldc);
  }
}

template <typename T>
struct abft_outcome {
  abft_verdict verdict = abft_verdict::checked;
  compute_mode mode = compute_mode::standard;  ///< Mode of the final run.
  int extra_attempts = 0;  ///< Arithmetic re-runs beyond the first.
};

/// Execute one real-GEMM descriptor under ABFT checksums at `requested`
/// mode.  Consumes the planned fault (input kinds corrupt the augmented
/// interiors after the checksums are taken; output kinds corrupt the
/// result interior before verification) and writes the verified (and
/// possibly corrected) interior back to call.c.  Escalation rebuilds the
/// augmented problem from the pristine user buffers — the occurrence
/// counters already advanced, so a re-run is injection-free — first at
/// the same mode (a transient fault does not repeat; same mode keeps the
/// trajectory bit-identical), then up the mantissa ladder.
template <typename T>
abft_outcome<T> run_abft(const gemm_call<T>& call, compute_mode requested,
                         resil::abft_mode mode,
                         const std::optional<resil::fault_hit>& hit,
                         std::string* fault_desc,
                         std::string_view fault_site) {
  static_assert(!gemm_traits<T>::is_complex);
  const blas_int m = call.m, n = call.n, k = call.k;
  const blas_int ldc_aug = m + 1;
  abft_outcome<T> out;
  out.mode = requested;

  std::vector<T> a_aug, b_aug, c_aug;
  double amax_a = 0.0, amax_b = 0.0;
  build_augmented_operands(call, a_aug, b_aug, &amax_a, &amax_b);
  double amax_c = seed_augmented_c(call, c_aug);

  // Input-space faults corrupt the operands the kernel will consume,
  // *after* the checksums were taken from clean data — the silent-
  // corruption scenario ABFT exists for.
  if (hit && resil::is_input_fault(hit->kind)) {
    if (hit->kind == resil::fault_kind::bitflip_a) {
      *fault_desc = apply_input_fault(*hit, a_aug.data(), m + 1, m, k);
    } else {
      *fault_desc = apply_input_fault(*hit, b_aug.data(), k, k, n);
    }
    if (!fault_desc->empty()) {
      resil::record_health_event("inject", fault_site, *fault_desc);
    }
  }

  const auto run_augmented = [&](compute_mode run_mode) {
    gemm_at_mode(run_mode, transpose::none, transpose::none, m + 1, n + 1,
                 k, call.alpha, a_aug.data(), m + 1, b_aug.data(), k,
                 call.beta, c_aug.data(), ldc_aug);
  };
  run_augmented(requested);

  // Output-space faults land in the result interior before verification.
  if (hit && !resil::is_input_fault(hit->kind)) {
    *fault_desc = apply_fault_to(*hit, c_aug.data(), ldc_aug, m, n);
    if (!fault_desc->empty()) {
      resil::record_health_event("inject", fault_site, *fault_desc);
    }
  }

  const double abs_alpha = std::abs(static_cast<double>(call.alpha));
  const double abs_beta = std::abs(static_cast<double>(call.beta));
  const auto thresholds_for = [&](compute_mode run_mode) {
    return resil::derive_abft_thresholds(abft_model_for<T>(run_mode), m, n,
                                         k, abs_alpha, amax_a, amax_b,
                                         abs_beta, amax_c);
  };
  resil::abft_thresholds tau = thresholds_for(requested);
  resil::abft_scan scan =
      resil::verify_checksums(c_aug.data(), ldc_aug, m, n, tau);
  trace::record_health_counter("abft_check");
  if (scan.clean()) {
    copy_interior(c_aug, call);
    return out;
  }

  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "rows=%zu cols=%zu mode=%s tau=%.3e", scan.bad_rows.size(),
                scan.bad_cols.size(),
                std::string(info(requested).env_token).c_str(),
                tau.tau_col);
  resil::record_health_event("abft_detect", fault_site, detail);
  if (mode == resil::abft_mode::detect) {
    // Detection-only: report and hand the corrupted result through — the
    // health sentinel / step invariants stay the backstop.
    out.verdict = abft_verdict::detected;
    copy_interior(c_aug, call);
    return out;
  }

  // Correct: a single bad row x bad column locates one element; the
  // column residual is (faulty - true) up to checksum noise, and the
  // bitflip snap recovers the exact clean bits when the corruption was a
  // flip.  Re-verify after the repair — a miscorrection must escalate,
  // never pass.
  if (scan.single()) {
    const blas_int i0 = static_cast<blas_int>(scan.bad_rows[0]);
    const blas_int j0 = static_cast<blas_int>(scan.bad_cols[0]);
    T* slot = c_aug.data() +
              (i0 + static_cast<std::size_t>(j0) * ldc_aug);
    const T faulty = *slot;
    const double target =
        static_cast<double>(faulty) - scan.col_delta[0];
    *slot = resil::snap_to_bitflip(faulty, target, tau.tau_col);
    const resil::abft_scan recheck =
        resil::verify_checksums(c_aug.data(), ldc_aug, m, n, tau);
    if (recheck.clean()) {
      std::snprintf(detail, sizeof(detail), "snap@(%lld,%lld) mode=%s",
                    static_cast<long long>(i0),
                    static_cast<long long>(j0),
                    std::string(info(requested).env_token).c_str());
      resil::record_health_event("abft_correct", fault_site, detail);
      out.verdict = abft_verdict::corrected;
      copy_interior(c_aug, call);
      return out;
    }
    *slot = faulty;  // miscorrection: undo, fall through to escalation
  }

  // Escalation ladder: rebuild everything from the pristine user buffers
  // (an input fault corrupted only our materialized copies) and re-run —
  // same mode first, then up the mantissa ladder to standard.
  compute_mode run_mode = requested;
  bool first = true;
  while (true) {
    if (!first) {
      const compute_mode next = effective_mode<T>(next_higher_mode(run_mode));
      if (next == run_mode) break;  // ladder exhausted
      run_mode = next;
    }
    first = false;
    std::snprintf(detail, sizeof(detail), "rerun mode=%s",
                  std::string(info(run_mode).env_token).c_str());
    resil::record_health_event("abft_escalate", fault_site, detail);
    build_augmented_operands(call, a_aug, b_aug, &amax_a, &amax_b);
    amax_c = seed_augmented_c(call, c_aug);
    run_augmented(run_mode);
    ++out.extra_attempts;
    tau = thresholds_for(run_mode);
    scan = resil::verify_checksums(c_aug.data(), ldc_aug, m, n, tau);
    if (scan.clean()) {
      resil::record_health_event("abft_correct", fault_site, detail);
      out.verdict = abft_verdict::recovered;
      out.mode = run_mode;
      copy_interior(c_aug, call);
      return out;
    }
  }
  // Exhausted: keep the last (still mismatching) result — detection is
  // recorded, and the health/step-invariant tiers remain armed.
  std::snprintf(detail, sizeof(detail), "exhausted mode=%s",
                std::string(info(run_mode).env_token).c_str());
  resil::record_health_event("abft_escalate", fault_site, detail);
  out.verdict = abft_verdict::failed;
  out.mode = run_mode;
  copy_interior(c_aug, call);
  return out;
}

/// Input-fault path when ABFT is off: the caller's operands are const, so
/// the corrupted operand is a materialized dense op() copy (the transpose
/// folded in) and the kernel consumes the copy.  Returns the injection
/// description.
template <typename T>
std::string run_with_corrupted_input(const gemm_call<T>& call,
                                     compute_mode mode,
                                     const resil::fault_hit& hit) {
  const blas_int m = call.m, n = call.n, k = call.k;
  std::string desc;
  if (hit.kind == resil::fault_kind::bitflip_a) {
    std::vector<T> a_copy(static_cast<std::size_t>(m) *
                          static_cast<std::size_t>(k));
    for (blas_int p = 0; p < k; ++p) {
      for (blas_int i = 0; i < m; ++i) {
        a_copy[static_cast<std::size_t>(i) +
               static_cast<std::size_t>(p) * static_cast<std::size_t>(m)] =
            op_element(call.a, call.lda, call.transa, i, p);
      }
    }
    desc = apply_input_fault(hit, a_copy.data(), m, m, k);
    gemm_at_mode(mode, transpose::none, call.transb, m, n, k, call.alpha,
                 a_copy.data(), m, call.b, call.ldb, call.beta, call.c,
                 call.ldc);
  } else {
    std::vector<T> b_copy(static_cast<std::size_t>(k) *
                          static_cast<std::size_t>(n));
    for (blas_int j = 0; j < n; ++j) {
      for (blas_int p = 0; p < k; ++p) {
        b_copy[static_cast<std::size_t>(p) +
               static_cast<std::size_t>(j) * static_cast<std::size_t>(k)] =
            op_element(call.b, call.ldb, call.transb, p, j);
      }
    }
    desc = apply_input_fault(hit, b_copy.data(), k, k, n);
    gemm_at_mode(mode, call.transa, transpose::none, m, n, k, call.alpha,
                 call.a, call.lda, b_copy.data(), k, call.beta, call.c,
                 call.ldc);
  }
  return desc;
}

}  // namespace

template <typename T>
call_plan plan_call(const gemm_call<T>& call) {
  call_plan plan;
  plan.res = resolve_compute_mode(call.call_site, call.mode);
  // ABFT resolution order: per-call override > policy rule's abft= flag >
  // DCMESH_ABFT process default.  Complex types have no checksum path.
  if constexpr (!gemm_traits<T>::is_complex) {
    plan.abft = call.abft ? *call.abft
                          : (plan.res.abft ? *plan.res.abft
                                           : resil::active_abft_mode());
  }
  if (plan.res.automatic) {
    // An AUTO rule matched: ask the installed tuner for the concrete
    // mode.  The tuner's calibration GEMMs carry a per-call mode
    // override, so they resolve through the call_override layer and can
    // never re-enter this branch.
    const auto choice = auto_tune_resolve(
        {call.call_site, gemm_traits<T>::routine, call.m, call.n, call.k,
         gemm_traits<T>::is_complex, gemm_traits<T>::is_fp64,
         plan.res.ulp_budget, plan.abft != resil::abft_mode::off});
    if (choice) {
      plan.res.mode = choice->mode;
      plan.tune = choice->provenance;
      plan.block_m = choice->block_m;
      plan.block_n = choice->block_n;
    } else {
      plan.res.mode = compute_mode::standard;
      plan.tune = auto_provenance::defaulted;
    }
  }
  // Resilience overlay: after a rollback the driver promotes matching
  // sites for a bounded number of series (resil/promotion.hpp); each
  // level is one step up the mantissa ladder on top of whatever the
  // policy/tuner resolved.  One relaxed atomic load when no promotion is
  // active.
  const std::string_view promo_site =
      call.call_site.empty() ? std::string_view(gemm_traits<T>::routine)
                             : std::string_view(call.call_site);
  const int promote = resil::promotion_steps(promo_site);
  for (int level = 0; level < promote; ++level) {
    plan.res.mode = next_higher_mode(plan.res.mode);
  }
  // An explicit per-call blocking beats the tuner's (the autotuner's own
  // blocking probes rely on this to time candidate blockings).
  if (call.block_m > 0 || call.block_n > 0) {
    plan.block_m = call.block_m;
    plan.block_n = call.block_n;
  }
  return plan;
}

template <typename T>
void run_planned(const gemm_call<T>& call, const call_plan& plan,
                 bool emit_span) {
  const mode_resolution& res = plan.res;
  const compute_mode requested = effective_mode<T>(res.mode);
  // Scoped for the whole execution so guard and health re-runs resolve
  // the same blocking as the primary run.  {0,0} is a no-op scope.
  const scoped_blocking blocking_scope(plan.block_m, plan.block_n);

  compute_mode final_mode = requested;
  fallback_verdict verdict = fallback_verdict::none;
  double residual = 0.0;
  int attempts = 1;
  const bool guard = res.guarded &&
                     mode_alters_arithmetic<T>(requested) &&
                     call.m > 0 && call.n > 0 && call.k > 0 &&
                     call.alpha != T(0);
  const bool dims_ok = call.m > 0 && call.n > 0;
  const resil::health_level health = resil::active_health_level();
  // At level `sample` the DCMESH_HEALTH_SAMPLE cadence gates the scan
  // (every Nth call; the && ordering advances the counter only for
  // sample-level calls with real dimensions).
  const bool scan =
      dims_ok && health != resil::health_level::off &&
      (health != resil::health_level::sample || resil::health_sample_due());
  // ABFT applies to real types on the unguarded path with real work to
  // check (the guard's sampled-reference machinery subsumes it when both
  // are requested; degenerate shapes have no checksums to verify).
  resil::abft_mode abft = resil::abft_mode::off;
  if constexpr (!gemm_traits<T>::is_complex) {
    if (!guard && call.m > 0 && call.n > 0 && call.k > 0 &&
        call.alpha != T(0)) {
      abft = plan.abft;
    }
  }
  // Pre-call C, packed m x n column-major; shared by the accuracy guard
  // and the health-recovery re-run (which must restore C when beta != 0).
  std::vector<T> c_orig;
  bool have_orig = false;

  // ---- resilience: query the deterministic injection plan up front so
  // ABFT can corrupt operands/results at the right stage.  Exactly one
  // query per call with real dimensions — the occurrence counter it
  // advances is what makes recovery re-runs fault-free.
  const std::string_view fault_site =
      call.call_site.empty() ? std::string_view(gemm_traits<T>::routine)
                             : std::string_view(call.call_site);
  const std::optional<resil::fault_hit> hit =
      dims_ok ? resil::next_fault(fault_site) : std::nullopt;
  std::string fault_desc;
  abft_verdict averdict = abft_verdict::none;

  // One span per GEMM, named by the call-site tag so the Chrome timeline
  // groups by site; inert (nullopt stays cheap) when tracing is off.
  std::optional<trace::span> span;
  if (emit_span && trace::tracer::instance().enabled()) {
    span.emplace(call.call_site.empty()
                     ? std::string(gemm_traits<T>::routine)
                     : std::string(call.call_site),
                 "gemm");
  }

  const auto start = std::chrono::steady_clock::now();
  if (!guard) {
    if (scan && call.beta != T(0)) {
      // A recovery re-run accumulates into C, so the pre-call C must be
      // kept.  Validate before copying through ldc.
      validate_gemm_args(call.transa, call.transb, call.m, call.n,
                         call.k, call.a, call.lda, call.b, call.ldb,
                         call.c, call.ldc);
      c_orig.resize(static_cast<std::size_t>(call.m) *
                    static_cast<std::size_t>(call.n));
      for (blas_int j = 0; j < call.n; ++j) {
        std::copy_n(call.c + j * call.ldc, call.m,
                    c_orig.data() + static_cast<std::size_t>(j) * call.m);
      }
      have_orig = true;
    }
    bool ran = false;
    if constexpr (!gemm_traits<T>::is_complex) {
      if (abft != resil::abft_mode::off) {
        // The checksum path materializes operands through lda/ldb/ldc;
        // validate first, like the guard does.
        validate_gemm_args(call.transa, call.transb, call.m, call.n,
                           call.k, call.a, call.lda, call.b, call.ldb,
                           call.c, call.ldc);
        const auto outcome =
            run_abft(call, requested, abft, hit, &fault_desc, fault_site);
        averdict = outcome.verdict;
        final_mode = outcome.mode;
        attempts += outcome.extra_attempts;
        ran = true;
      }
    }
    if (!ran) {
      if (hit && resil::is_input_fault(hit->kind) && call.k > 0) {
        fault_desc = run_with_corrupted_input(call, requested, *hit);
        if (!fault_desc.empty()) {
          resil::record_health_event("inject", fault_site, fault_desc);
        }
      } else {
        run_at(requested, call);
      }
    }
  } else {
    // Validate before touching C: the guard must not copy through a
    // malformed ldc.
    validate_gemm_args(call.transa, call.transb, call.m, call.n,
                       call.k, call.a, call.lda, call.b, call.ldb,
                       call.c, call.ldc);
    c_orig.resize(static_cast<std::size_t>(call.m) *
                  static_cast<std::size_t>(call.n));
    for (blas_int j = 0; j < call.n; ++j) {
      std::copy_n(call.c + j * call.ldc, call.m,
                  c_orig.data() + static_cast<std::size_t>(j) * call.m);
    }
    have_orig = true;
    const auto rows = guard_sample_rows(call.m);

    run_at(final_mode, call);
    residual = sampled_residual(call, c_orig, rows);
    verdict = fallback_verdict::passed;
    while (residual > res.tolerance &&
           final_mode != compute_mode::standard) {
      restore_c(call, c_orig);
      final_mode = effective_mode<T>(next_higher_mode(final_mode));
      ++attempts;
      run_at(final_mode, call);
      residual = sampled_residual(call, c_orig, rows);
      verdict = fallback_verdict::promoted;
    }
    record_fallback(call.call_site, verdict == fallback_verdict::promoted,
                    final_mode, residual);
  }
  const auto stop = std::chrono::steady_clock::now();

  // ---- resilience: apply any fault the timed block did not consume ----
  if (hit && fault_desc.empty()) {
    if (resil::is_input_fault(hit->kind)) {
      // Only reachable on the guarded path (or k == 0): the guard's
      // sampled reference reads the pristine operands, so operand
      // corruption is suppressed there.  The occurrence still counted.
      resil::record_health_event("inject", fault_site,
                                 "suppressed(guarded)");
    } else {
      fault_desc = apply_fault(*hit, call);
      if (!fault_desc.empty()) {
        resil::record_health_event("inject", fault_site, fault_desc);
      }
    }
  }

  health_verdict hverdict = health_verdict::none;
  if (scan) {
    blas_int bad_i = 0, bad_j = 0;
    bool finite_ok = scan_c_finite(call, health, &bad_i, &bad_j);
    if (finite_ok) {
      hverdict = health_verdict::clean;
    } else {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "non-finite C(%lld,%lld) mode=%s",
                    static_cast<long long>(bad_i),
                    static_cast<long long>(bad_j),
                    std::string(info(final_mode).env_token).c_str());
      resil::record_health_event("detect", fault_site, detail);
      // Re-run up the mantissa ladder.  When the ladder tops out at
      // standard, one same-mode retry: a transient fault does not repeat,
      // and the occurrence counters above guarantee no re-injection.
      // `scan` implies have_orig || beta == 0, so C is restorable.
      bool retried_same = false;
      while (!finite_ok) {
        const compute_mode next =
            effective_mode<T>(next_higher_mode(final_mode));
        if (next == final_mode) {
          if (retried_same) break;
          retried_same = true;
        }
        final_mode = next;
        if (have_orig) restore_c(call, c_orig);
        run_at(final_mode, call);
        ++attempts;
        finite_ok = scan_c_finite(call, health, &bad_i, &bad_j);
      }
      hverdict = finite_ok ? health_verdict::recovered
                           : health_verdict::detected;
      resil::record_health_event(
          finite_ok ? "recover" : "unrecovered", fault_site,
          info(final_mode).env_token);
    }
  }

  if (span) {
    span->arg("routine", gemm_traits<T>::routine);
    span->arg("m", static_cast<std::int64_t>(call.m));
    span->arg("n", static_cast<std::int64_t>(call.n));
    span->arg("k", static_cast<std::int64_t>(call.k));
    span->arg("flops", gemm_flops(gemm_traits<T>::is_complex, call.m,
                                  call.n, call.k));
    span->arg("mode", info(final_mode).env_token);
    if (plan.tune != auto_provenance::none) {
      span->arg("tune", name(plan.tune));
    }
    if (verdict != fallback_verdict::none) {
      span->arg("fallback", name(verdict));
    }
    if (!fault_desc.empty()) {
      span->arg("fault", fault_desc);
    }
    if (hverdict == health_verdict::detected ||
        hverdict == health_verdict::recovered) {
      span->arg("health", name(hverdict));
    }
    if (averdict != abft_verdict::none &&
        averdict != abft_verdict::checked) {
      span->arg("abft", name(averdict));
    }
    // Measured-vs-modeled: annotate with the xehpc roofline's predicted
    // device time when core has installed the model hook.
    const double predicted = trace::predicted_gemm_seconds(
        {call.m, call.n, call.k, gemm_traits<T>::is_complex,
         gemm_traits<T>::is_fp64, info(final_mode).env_token});
    if (predicted >= 0.0) span->arg("predicted_us", predicted * 1e6);
  }

  call_record record;
  record.routine = gemm_traits<T>::routine;
  record.transa = static_cast<char>(call.transa);
  record.transb = static_cast<char>(call.transb);
  record.m = call.m;
  record.n = call.n;
  record.k = call.k;
  record.lda = call.lda;
  record.ldb = call.ldb;
  record.ldc = call.ldc;
  record.seconds = std::chrono::duration<double>(stop - start).count();
  record.flops = gemm_flops(gemm_traits<T>::is_complex, call.m, call.n,
                            call.k);
  record.mode = final_mode;
  record.call_site = std::string(call.call_site);
  record.source = res.source;
  record.requested_mode = requested;
  record.fallback = verdict;
  record.guard_residual = residual;
  record.attempts = attempts;
  record.tune = plan.tune;
  record.fault = std::move(fault_desc);
  record.health = hverdict;
  record.abft = averdict;
  record_call(std::move(record));
}

template call_plan plan_call<float>(const gemm_call<float>&);
template call_plan plan_call<double>(const gemm_call<double>&);
template call_plan plan_call<std::complex<float>>(
    const gemm_call<std::complex<float>>&);
template call_plan plan_call<std::complex<double>>(
    const gemm_call<std::complex<double>>&);

template void run_planned<float>(const gemm_call<float>&, const call_plan&,
                                 bool);
template void run_planned<double>(const gemm_call<double>&,
                                  const call_plan&, bool);
template void run_planned<std::complex<float>>(
    const gemm_call<std::complex<float>>&, const call_plan&, bool);
template void run_planned<std::complex<double>>(
    const gemm_call<std::complex<double>>&, const call_plan&, bool);

}  // namespace detail

template <typename T>
void run(const gemm_call<T>& call) {
  detail::run_planned(call, detail::plan_call(call), true);
}

template void run<float>(const gemm_call<float>&);
template void run<double>(const gemm_call<double>&);
template void run<std::complex<float>>(const gemm_call<std::complex<float>>&);
template void run<std::complex<double>>(
    const gemm_call<std::complex<double>>&);

}  // namespace dcmesh::blas
