// gemm_dispatch.cpp — the single choke point behind every GEMM descriptor.
//
// run(gemm_call<T>) resolves the call's effective compute mode through the
// precision policy engine (consulting the auto_tune_hook when an AUTO rule
// matched), executes the arithmetic via the per-type gemm_at_mode
// overloads, optionally applies the accuracy-guarded fallback (row-sampled
// residual check against a same-precision standard reference, with
// transparent promotion to the next-higher mode on failure), and logs one
// verbose record carrying the site, the resolved mode, the auto-decision
// provenance, and the guard verdict.
//
// The resilience subsystem (src/resil) hooks the same choke point:
// plan_call() overlays any active precision promotion on the resolved
// mode; after the arithmetic, an active DCMESH_FAULT_PLAN may perturb the
// result (deterministic injection), and a non-off DCMESH_HEALTH level
// finite-scans it — on detection the call is transparently re-run up the
// mantissa-promotion ladder (one same-mode retry once at standard, since
// a transient fault does not repeat), and the verdict lands in the
// verbose record, the metrics registry, and the trace.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/resil/fault_plan.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/resil/promotion.hpp"
#include "dcmesh/trace/tracer.hpp"
#include "dispatch_internal.hpp"
#include "gemm_kernel.hpp"
#include "gemm_modes.hpp"
#include "split.hpp"

namespace dcmesh::blas {
namespace detail {
namespace {

/// The mode recorded (and executed) for element type T.  Mirrors the
/// pre-descriptor entry points: float/complex<float> records the resolved
/// mode as-is (even when it is a no-op, like COMPLEX_3M on sgemm), real
/// double is always standard, complex double keeps only COMPLEX_3M.
template <typename T>
constexpr compute_mode effective_mode(compute_mode mode) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    (void)mode;
    return compute_mode::standard;
  } else if constexpr (std::is_same_v<T, std::complex<double>>) {
    return mode == compute_mode::complex_3m ? compute_mode::complex_3m
                                            : compute_mode::standard;
  } else {
    return mode;
  }
}

/// True when `mode` changes T's arithmetic vs standard — i.e. when a
/// guard check is meaningful.
template <typename T>
constexpr bool mode_alters_arithmetic(compute_mode mode) noexcept {
  if constexpr (std::is_same_v<T, float>) {
    return is_split_mode(mode);
  } else if constexpr (std::is_same_v<T, std::complex<float>>) {
    return is_split_mode(mode) || mode == compute_mode::complex_3m;
  } else if constexpr (std::is_same_v<T, std::complex<double>>) {
    return mode == compute_mode::complex_3m;
  } else {
    (void)mode;
    return false;
  }
}

/// Rows of C the guard samples: up to kGuardSampleRows evenly strided
/// rows (deterministic — guarded runs must stay reproducible).
inline constexpr blas_int kGuardSampleRows = 8;

std::vector<blas_int> guard_sample_rows(blas_int m) {
  const blas_int stride = std::max<blas_int>(1, m / kGuardSampleRows);
  std::vector<blas_int> rows;
  for (blas_int i = 0;
       i < m && rows.size() < static_cast<std::size_t>(kGuardSampleRows);
       i += stride) {
    rows.push_back(i);
  }
  return rows;
}

/// Relative Frobenius residual of the low-precision result against a
/// standard-arithmetic reference computed for the sampled rows only, in
/// T's own precision (the "FP32 reference" for the float paths).
/// `c_orig` holds the pre-call C, packed m x n column-major.
template <typename T>
double sampled_residual(const gemm_call<T>& call,
                        const std::vector<T>& c_orig,
                        const std::vector<blas_int>& rows) {
  double num = 0.0, den = 0.0;
  for (const blas_int i : rows) {
    for (blas_int j = 0; j < call.n; ++j) {
      T acc = T(0);
      for (blas_int p = 0; p < call.k; ++p) {
        acc += op_element(call.a, call.lda, call.transa, i, p) *
               op_element(call.b, call.ldb, call.transb, p, j);
      }
      const T ref = call.alpha * acc +
                    call.beta * c_orig[static_cast<std::size_t>(
                                    i + j * call.m)];
      const T got = call.c[i + j * call.ldc];
      const double diff = std::abs(got - ref);
      num += diff * diff;
      const double mag = std::abs(ref);
      den += mag * mag;
    }
  }
  if (num == 0.0) return 0.0;
  constexpr double kTinyDen = 1e-300;
  return std::sqrt(num) / std::sqrt(std::max(den, kTinyDen));
}

template <typename T>
void restore_c(const gemm_call<T>& call, const std::vector<T>& c_orig) {
  for (blas_int j = 0; j < call.n; ++j) {
    std::copy_n(c_orig.data() + static_cast<std::size_t>(j) * call.m,
                call.m, call.c + j * call.ldc);
  }
}

template <typename T>
void run_at(compute_mode mode, const gemm_call<T>& call) {
  gemm_at_mode(mode, call.transa, call.transb, call.m, call.n, call.k,
               call.alpha, call.a, call.lda, call.b, call.ldb, call.beta,
               call.c, call.ldc);
}

// ---- resilience: fault application + finite scan ----------------------

template <typename T>
struct real_part_of {
  using type = T;
};
template <typename R>
struct real_part_of<std::complex<R>> {
  using type = R;
};

template <typename T>
bool element_finite(const T& v) noexcept {
  if constexpr (gemm_traits<T>::is_complex) {
    return std::isfinite(v.real()) && std::isfinite(v.imag());
  } else {
    return std::isfinite(v);
  }
}

/// Apply one planned fault to C in place, returning the description that
/// goes into the verbose record and the trace ("nan@(3,7)",
/// "bitflip@(0,2):b12", "scale*1024").  Element/bit choices come from the
/// hit's deterministic draws; single-element kinds perturb the real part
/// (std::complex guarantees the two-reals layout).
template <typename T>
std::string apply_fault(const resil::fault_hit& hit,
                        const gemm_call<T>& call) {
  using real_t = typename real_part_of<T>::type;
  const std::size_t mn = static_cast<std::size_t>(call.m) *
                         static_cast<std::size_t>(call.n);
  if (mn == 0) return {};
  char buffer[80];
  if (hit.kind == resil::fault_kind::scale) {
    const double factor = hit.param.value_or(1024.0);
    for (blas_int j = 0; j < call.n; ++j) {
      for (blas_int i = 0; i < call.m; ++i) {
        call.c[i + j * call.ldc] *= static_cast<real_t>(factor);
      }
    }
    std::snprintf(buffer, sizeof(buffer), "scale*%g", factor);
    return buffer;
  }
  const std::size_t idx = hit.pick0 % mn;
  const blas_int i =
      static_cast<blas_int>(idx % static_cast<std::size_t>(call.m));
  const blas_int j =
      static_cast<blas_int>(idx / static_cast<std::size_t>(call.m));
  real_t* slot = reinterpret_cast<real_t*>(call.c + (i + j * call.ldc));
  switch (hit.kind) {
    case resil::fault_kind::nan_value:
      *slot = std::numeric_limits<real_t>::quiet_NaN();
      std::snprintf(buffer, sizeof(buffer), "nan@(%lld,%lld)",
                    static_cast<long long>(i), static_cast<long long>(j));
      break;
    case resil::fault_kind::inf_value:
      *slot = std::numeric_limits<real_t>::infinity();
      std::snprintf(buffer, sizeof(buffer), "inf@(%lld,%lld)",
                    static_cast<long long>(i), static_cast<long long>(j));
      break;
    case resil::fault_kind::bitflip: {
      constexpr unsigned kBits = sizeof(real_t) * 8;
      const unsigned bit =
          hit.param ? static_cast<unsigned>(*hit.param) % kBits
                    : static_cast<unsigned>(hit.pick1 % kBits);
      if constexpr (sizeof(real_t) == 4) {
        std::uint32_t repr;
        std::memcpy(&repr, slot, sizeof(repr));
        repr ^= std::uint32_t{1} << bit;
        std::memcpy(slot, &repr, sizeof(repr));
      } else {
        std::uint64_t repr;
        std::memcpy(&repr, slot, sizeof(repr));
        repr ^= std::uint64_t{1} << bit;
        std::memcpy(slot, &repr, sizeof(repr));
      }
      std::snprintf(buffer, sizeof(buffer), "bitflip@(%lld,%lld):b%u",
                    static_cast<long long>(i), static_cast<long long>(j),
                    bit);
      break;
    }
    case resil::fault_kind::scale:
      break;  // handled above
  }
  return buffer;
}

/// Finite scan of C at the given level.  At `sample` the scan strides so
/// that at most kSampleScanElems elements are touched (deterministic —
/// a single flipped element may escape a sampled scan; the step-level
/// invariants are the backstop).  Returns false and the offending (i,j)
/// on the first non-finite element.
template <typename T>
bool scan_c_finite(const gemm_call<T>& call, resil::health_level level,
                   blas_int* bad_i, blas_int* bad_j) {
  const std::size_t mn = static_cast<std::size_t>(call.m) *
                         static_cast<std::size_t>(call.n);
  std::size_t stride = 1;
  if (level == resil::health_level::sample &&
      mn > resil::kSampleScanElems) {
    stride = (mn + resil::kSampleScanElems - 1) / resil::kSampleScanElems;
  }
  for (std::size_t idx = 0; idx < mn; idx += stride) {
    const blas_int i =
        static_cast<blas_int>(idx % static_cast<std::size_t>(call.m));
    const blas_int j =
        static_cast<blas_int>(idx / static_cast<std::size_t>(call.m));
    if (!element_finite(call.c[i + j * call.ldc])) {
      *bad_i = i;
      *bad_j = j;
      return false;
    }
  }
  return true;
}

}  // namespace

template <typename T>
call_plan plan_call(const gemm_call<T>& call) {
  call_plan plan;
  plan.res = resolve_compute_mode(call.call_site, call.mode);
  if (plan.res.automatic) {
    // An AUTO rule matched: ask the installed tuner for the concrete
    // mode.  The tuner's calibration GEMMs carry a per-call mode
    // override, so they resolve through the call_override layer and can
    // never re-enter this branch.
    const auto choice = auto_tune_resolve(
        {call.call_site, gemm_traits<T>::routine, call.m, call.n, call.k,
         gemm_traits<T>::is_complex, gemm_traits<T>::is_fp64,
         plan.res.ulp_budget});
    if (choice) {
      plan.res.mode = choice->mode;
      plan.tune = choice->provenance;
      plan.block_m = choice->block_m;
      plan.block_n = choice->block_n;
    } else {
      plan.res.mode = compute_mode::standard;
      plan.tune = auto_provenance::defaulted;
    }
  }
  // Resilience overlay: after a rollback the driver promotes matching
  // sites for a bounded number of series (resil/promotion.hpp); each
  // level is one step up the mantissa ladder on top of whatever the
  // policy/tuner resolved.  One relaxed atomic load when no promotion is
  // active.
  const std::string_view promo_site =
      call.call_site.empty() ? std::string_view(gemm_traits<T>::routine)
                             : std::string_view(call.call_site);
  const int promote = resil::promotion_steps(promo_site);
  for (int level = 0; level < promote; ++level) {
    plan.res.mode = next_higher_mode(plan.res.mode);
  }
  // An explicit per-call blocking beats the tuner's (the autotuner's own
  // blocking probes rely on this to time candidate blockings).
  if (call.block_m > 0 || call.block_n > 0) {
    plan.block_m = call.block_m;
    plan.block_n = call.block_n;
  }
  return plan;
}

template <typename T>
void run_planned(const gemm_call<T>& call, const call_plan& plan,
                 bool emit_span) {
  const mode_resolution& res = plan.res;
  const compute_mode requested = effective_mode<T>(res.mode);
  // Scoped for the whole execution so guard and health re-runs resolve
  // the same blocking as the primary run.  {0,0} is a no-op scope.
  const scoped_blocking blocking_scope(plan.block_m, plan.block_n);

  compute_mode final_mode = requested;
  fallback_verdict verdict = fallback_verdict::none;
  double residual = 0.0;
  int attempts = 1;
  const bool guard = res.guarded &&
                     mode_alters_arithmetic<T>(requested) &&
                     call.m > 0 && call.n > 0 && call.k > 0 &&
                     call.alpha != T(0);
  const bool dims_ok = call.m > 0 && call.n > 0;
  const resil::health_level health = resil::active_health_level();
  const bool scan = health != resil::health_level::off && dims_ok;
  // Pre-call C, packed m x n column-major; shared by the accuracy guard
  // and the health-recovery re-run (which must restore C when beta != 0).
  std::vector<T> c_orig;
  bool have_orig = false;

  // One span per GEMM, named by the call-site tag so the Chrome timeline
  // groups by site; inert (nullopt stays cheap) when tracing is off.
  std::optional<trace::span> span;
  if (emit_span && trace::tracer::instance().enabled()) {
    span.emplace(call.call_site.empty()
                     ? std::string(gemm_traits<T>::routine)
                     : std::string(call.call_site),
                 "gemm");
  }

  const auto start = std::chrono::steady_clock::now();
  if (!guard) {
    if (scan && call.beta != T(0)) {
      // A recovery re-run accumulates into C, so the pre-call C must be
      // kept.  Validate before copying through ldc.
      validate_gemm_args(call.transa, call.transb, call.m, call.n,
                         call.k, call.a, call.lda, call.b, call.ldb,
                         call.c, call.ldc);
      c_orig.resize(static_cast<std::size_t>(call.m) *
                    static_cast<std::size_t>(call.n));
      for (blas_int j = 0; j < call.n; ++j) {
        std::copy_n(call.c + j * call.ldc, call.m,
                    c_orig.data() + static_cast<std::size_t>(j) * call.m);
      }
      have_orig = true;
    }
    run_at(requested, call);
  } else {
    // Validate before touching C: the guard must not copy through a
    // malformed ldc.
    validate_gemm_args(call.transa, call.transb, call.m, call.n,
                       call.k, call.a, call.lda, call.b, call.ldb,
                       call.c, call.ldc);
    c_orig.resize(static_cast<std::size_t>(call.m) *
                  static_cast<std::size_t>(call.n));
    for (blas_int j = 0; j < call.n; ++j) {
      std::copy_n(call.c + j * call.ldc, call.m,
                  c_orig.data() + static_cast<std::size_t>(j) * call.m);
    }
    have_orig = true;
    const auto rows = guard_sample_rows(call.m);

    run_at(final_mode, call);
    residual = sampled_residual(call, c_orig, rows);
    verdict = fallback_verdict::passed;
    while (residual > res.tolerance &&
           final_mode != compute_mode::standard) {
      restore_c(call, c_orig);
      final_mode = effective_mode<T>(next_higher_mode(final_mode));
      ++attempts;
      run_at(final_mode, call);
      residual = sampled_residual(call, c_orig, rows);
      verdict = fallback_verdict::promoted;
    }
    record_fallback(call.call_site, verdict == fallback_verdict::promoted,
                    final_mode, residual);
  }
  const auto stop = std::chrono::steady_clock::now();

  // ---- resilience: deterministic injection, finite scan, recovery ----
  const std::string_view fault_site =
      call.call_site.empty() ? std::string_view(gemm_traits<T>::routine)
                             : std::string_view(call.call_site);
  std::string fault_desc;
  if (dims_ok) {
    // One getenv when no plan is active.  The occurrence counter advanced
    // here is what makes recovery re-runs fault-free: they re-execute the
    // arithmetic below without re-querying the plan.
    if (const auto hit = resil::next_fault(fault_site)) {
      fault_desc = apply_fault(*hit, call);
      if (!fault_desc.empty()) {
        resil::record_health_event("inject", fault_site, fault_desc);
      }
    }
  }

  health_verdict hverdict = health_verdict::none;
  if (scan) {
    blas_int bad_i = 0, bad_j = 0;
    bool finite_ok = scan_c_finite(call, health, &bad_i, &bad_j);
    if (finite_ok) {
      hverdict = health_verdict::clean;
    } else {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "non-finite C(%lld,%lld) mode=%s",
                    static_cast<long long>(bad_i),
                    static_cast<long long>(bad_j),
                    std::string(info(final_mode).env_token).c_str());
      resil::record_health_event("detect", fault_site, detail);
      // Re-run up the mantissa ladder.  When the ladder tops out at
      // standard, one same-mode retry: a transient fault does not repeat,
      // and the occurrence counters above guarantee no re-injection.
      // `scan` implies have_orig || beta == 0, so C is restorable.
      bool retried_same = false;
      while (!finite_ok) {
        const compute_mode next =
            effective_mode<T>(next_higher_mode(final_mode));
        if (next == final_mode) {
          if (retried_same) break;
          retried_same = true;
        }
        final_mode = next;
        if (have_orig) restore_c(call, c_orig);
        run_at(final_mode, call);
        ++attempts;
        finite_ok = scan_c_finite(call, health, &bad_i, &bad_j);
      }
      hverdict = finite_ok ? health_verdict::recovered
                           : health_verdict::detected;
      resil::record_health_event(
          finite_ok ? "recover" : "unrecovered", fault_site,
          info(final_mode).env_token);
    }
  }

  if (span) {
    span->arg("routine", gemm_traits<T>::routine);
    span->arg("m", static_cast<std::int64_t>(call.m));
    span->arg("n", static_cast<std::int64_t>(call.n));
    span->arg("k", static_cast<std::int64_t>(call.k));
    span->arg("flops", gemm_flops(gemm_traits<T>::is_complex, call.m,
                                  call.n, call.k));
    span->arg("mode", info(final_mode).env_token);
    if (plan.tune != auto_provenance::none) {
      span->arg("tune", name(plan.tune));
    }
    if (verdict != fallback_verdict::none) {
      span->arg("fallback", name(verdict));
    }
    if (!fault_desc.empty()) {
      span->arg("fault", fault_desc);
    }
    if (hverdict == health_verdict::detected ||
        hverdict == health_verdict::recovered) {
      span->arg("health", name(hverdict));
    }
    // Measured-vs-modeled: annotate with the xehpc roofline's predicted
    // device time when core has installed the model hook.
    const double predicted = trace::predicted_gemm_seconds(
        {call.m, call.n, call.k, gemm_traits<T>::is_complex,
         gemm_traits<T>::is_fp64, info(final_mode).env_token});
    if (predicted >= 0.0) span->arg("predicted_us", predicted * 1e6);
  }

  call_record record;
  record.routine = gemm_traits<T>::routine;
  record.transa = static_cast<char>(call.transa);
  record.transb = static_cast<char>(call.transb);
  record.m = call.m;
  record.n = call.n;
  record.k = call.k;
  record.lda = call.lda;
  record.ldb = call.ldb;
  record.ldc = call.ldc;
  record.seconds = std::chrono::duration<double>(stop - start).count();
  record.flops = gemm_flops(gemm_traits<T>::is_complex, call.m, call.n,
                            call.k);
  record.mode = final_mode;
  record.call_site = std::string(call.call_site);
  record.source = res.source;
  record.requested_mode = requested;
  record.fallback = verdict;
  record.guard_residual = residual;
  record.attempts = attempts;
  record.tune = plan.tune;
  record.fault = std::move(fault_desc);
  record.health = hverdict;
  record_call(std::move(record));
}

template call_plan plan_call<float>(const gemm_call<float>&);
template call_plan plan_call<double>(const gemm_call<double>&);
template call_plan plan_call<std::complex<float>>(
    const gemm_call<std::complex<float>>&);
template call_plan plan_call<std::complex<double>>(
    const gemm_call<std::complex<double>>&);

template void run_planned<float>(const gemm_call<float>&, const call_plan&,
                                 bool);
template void run_planned<double>(const gemm_call<double>&,
                                  const call_plan&, bool);
template void run_planned<std::complex<float>>(
    const gemm_call<std::complex<float>>&, const call_plan&, bool);
template void run_planned<std::complex<double>>(
    const gemm_call<std::complex<double>>&, const call_plan&, bool);

}  // namespace detail

template <typename T>
void run(const gemm_call<T>& call) {
  detail::run_planned(call, detail::plan_call(call), true);
}

template void run<float>(const gemm_call<float>&);
template void run<double>(const gemm_call<double>&);
template void run<std::complex<float>>(const gemm_call<std::complex<float>>&);
template void run<std::complex<double>>(
    const gemm_call<std::complex<double>>&);

}  // namespace dcmesh::blas
