// gemm_dispatch.cpp — the single choke point behind every GEMM descriptor.
//
// run(gemm_call<T>) resolves the call's effective compute mode through the
// precision policy engine (consulting the auto_tune_hook when an AUTO rule
// matched), executes the arithmetic via the per-type gemm_at_mode
// overloads, optionally applies the accuracy-guarded fallback (row-sampled
// residual check against a same-precision standard reference, with
// transparent promotion to the next-higher mode on failure), and logs one
// verbose record carrying the site, the resolved mode, the auto-decision
// provenance, and the guard verdict.

#include <chrono>
#include <cmath>
#include <optional>
#include <vector>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/trace/tracer.hpp"
#include "dispatch_internal.hpp"
#include "gemm_kernel.hpp"
#include "gemm_modes.hpp"
#include "split.hpp"

namespace dcmesh::blas {
namespace detail {
namespace {

/// The mode recorded (and executed) for element type T.  Mirrors the
/// pre-descriptor entry points: float/complex<float> records the resolved
/// mode as-is (even when it is a no-op, like COMPLEX_3M on sgemm), real
/// double is always standard, complex double keeps only COMPLEX_3M.
template <typename T>
constexpr compute_mode effective_mode(compute_mode mode) noexcept {
  if constexpr (std::is_same_v<T, double>) {
    (void)mode;
    return compute_mode::standard;
  } else if constexpr (std::is_same_v<T, std::complex<double>>) {
    return mode == compute_mode::complex_3m ? compute_mode::complex_3m
                                            : compute_mode::standard;
  } else {
    return mode;
  }
}

/// True when `mode` changes T's arithmetic vs standard — i.e. when a
/// guard check is meaningful.
template <typename T>
constexpr bool mode_alters_arithmetic(compute_mode mode) noexcept {
  if constexpr (std::is_same_v<T, float>) {
    return is_split_mode(mode);
  } else if constexpr (std::is_same_v<T, std::complex<float>>) {
    return is_split_mode(mode) || mode == compute_mode::complex_3m;
  } else if constexpr (std::is_same_v<T, std::complex<double>>) {
    return mode == compute_mode::complex_3m;
  } else {
    (void)mode;
    return false;
  }
}

/// Rows of C the guard samples: up to kGuardSampleRows evenly strided
/// rows (deterministic — guarded runs must stay reproducible).
inline constexpr blas_int kGuardSampleRows = 8;

std::vector<blas_int> guard_sample_rows(blas_int m) {
  const blas_int stride = std::max<blas_int>(1, m / kGuardSampleRows);
  std::vector<blas_int> rows;
  for (blas_int i = 0;
       i < m && rows.size() < static_cast<std::size_t>(kGuardSampleRows);
       i += stride) {
    rows.push_back(i);
  }
  return rows;
}

/// Relative Frobenius residual of the low-precision result against a
/// standard-arithmetic reference computed for the sampled rows only, in
/// T's own precision (the "FP32 reference" for the float paths).
/// `c_orig` holds the pre-call C, packed m x n column-major.
template <typename T>
double sampled_residual(const gemm_call<T>& call,
                        const std::vector<T>& c_orig,
                        const std::vector<blas_int>& rows) {
  double num = 0.0, den = 0.0;
  for (const blas_int i : rows) {
    for (blas_int j = 0; j < call.n; ++j) {
      T acc = T(0);
      for (blas_int p = 0; p < call.k; ++p) {
        acc += op_element(call.a, call.lda, call.transa, i, p) *
               op_element(call.b, call.ldb, call.transb, p, j);
      }
      const T ref = call.alpha * acc +
                    call.beta * c_orig[static_cast<std::size_t>(
                                    i + j * call.m)];
      const T got = call.c[i + j * call.ldc];
      const double diff = std::abs(got - ref);
      num += diff * diff;
      const double mag = std::abs(ref);
      den += mag * mag;
    }
  }
  if (num == 0.0) return 0.0;
  constexpr double kTinyDen = 1e-300;
  return std::sqrt(num) / std::sqrt(std::max(den, kTinyDen));
}

template <typename T>
void restore_c(const gemm_call<T>& call, const std::vector<T>& c_orig) {
  for (blas_int j = 0; j < call.n; ++j) {
    std::copy_n(c_orig.data() + static_cast<std::size_t>(j) * call.m,
                call.m, call.c + j * call.ldc);
  }
}

template <typename T>
void run_at(compute_mode mode, const gemm_call<T>& call) {
  gemm_at_mode(mode, call.transa, call.transb, call.m, call.n, call.k,
               call.alpha, call.a, call.lda, call.b, call.ldb, call.beta,
               call.c, call.ldc);
}

}  // namespace

template <typename T>
call_plan plan_call(const gemm_call<T>& call) {
  call_plan plan;
  plan.res = resolve_compute_mode(call.call_site, call.mode);
  if (plan.res.automatic) {
    // An AUTO rule matched: ask the installed tuner for the concrete
    // mode.  The tuner's calibration GEMMs carry a per-call mode
    // override, so they resolve through the call_override layer and can
    // never re-enter this branch.
    const auto choice = auto_tune_resolve(
        {call.call_site, gemm_traits<T>::routine, call.m, call.n, call.k,
         gemm_traits<T>::is_complex, gemm_traits<T>::is_fp64,
         plan.res.ulp_budget});
    if (choice) {
      plan.res.mode = choice->mode;
      plan.tune = choice->provenance;
    } else {
      plan.res.mode = compute_mode::standard;
      plan.tune = auto_provenance::defaulted;
    }
  }
  return plan;
}

template <typename T>
void run_planned(const gemm_call<T>& call, const call_plan& plan,
                 bool emit_span) {
  const mode_resolution& res = plan.res;
  const compute_mode requested = effective_mode<T>(res.mode);

  compute_mode final_mode = requested;
  fallback_verdict verdict = fallback_verdict::none;
  double residual = 0.0;
  int attempts = 1;
  const bool guard = res.guarded &&
                     mode_alters_arithmetic<T>(requested) &&
                     call.m > 0 && call.n > 0 && call.k > 0 &&
                     call.alpha != T(0);

  // One span per GEMM, named by the call-site tag so the Chrome timeline
  // groups by site; inert (nullopt stays cheap) when tracing is off.
  std::optional<trace::span> span;
  if (emit_span && trace::tracer::instance().enabled()) {
    span.emplace(call.call_site.empty()
                     ? std::string(gemm_traits<T>::routine)
                     : std::string(call.call_site),
                 "gemm");
  }

  const auto start = std::chrono::steady_clock::now();
  if (!guard) {
    run_at(requested, call);
  } else {
    // Validate before touching C: the guard must not copy through a
    // malformed ldc.
    validate_gemm_args(call.transa, call.transb, call.m, call.n,
                       call.k, call.a, call.lda, call.b, call.ldb,
                       call.c, call.ldc);
    std::vector<T> c_orig(static_cast<std::size_t>(call.m) *
                          static_cast<std::size_t>(call.n));
    for (blas_int j = 0; j < call.n; ++j) {
      std::copy_n(call.c + j * call.ldc, call.m,
                  c_orig.data() + static_cast<std::size_t>(j) * call.m);
    }
    const auto rows = guard_sample_rows(call.m);

    run_at(final_mode, call);
    residual = sampled_residual(call, c_orig, rows);
    verdict = fallback_verdict::passed;
    while (residual > res.tolerance &&
           final_mode != compute_mode::standard) {
      restore_c(call, c_orig);
      final_mode = effective_mode<T>(next_higher_mode(final_mode));
      ++attempts;
      run_at(final_mode, call);
      residual = sampled_residual(call, c_orig, rows);
      verdict = fallback_verdict::promoted;
    }
    record_fallback(call.call_site, verdict == fallback_verdict::promoted,
                    final_mode, residual);
  }
  const auto stop = std::chrono::steady_clock::now();

  if (span) {
    span->arg("routine", gemm_traits<T>::routine);
    span->arg("m", static_cast<std::int64_t>(call.m));
    span->arg("n", static_cast<std::int64_t>(call.n));
    span->arg("k", static_cast<std::int64_t>(call.k));
    span->arg("flops", gemm_flops(gemm_traits<T>::is_complex, call.m,
                                  call.n, call.k));
    span->arg("mode", info(final_mode).env_token);
    if (plan.tune != auto_provenance::none) {
      span->arg("tune", name(plan.tune));
    }
    if (verdict != fallback_verdict::none) {
      span->arg("fallback", name(verdict));
    }
    // Measured-vs-modeled: annotate with the xehpc roofline's predicted
    // device time when core has installed the model hook.
    const double predicted = trace::predicted_gemm_seconds(
        {call.m, call.n, call.k, gemm_traits<T>::is_complex,
         gemm_traits<T>::is_fp64, info(final_mode).env_token});
    if (predicted >= 0.0) span->arg("predicted_us", predicted * 1e6);
  }

  call_record record;
  record.routine = gemm_traits<T>::routine;
  record.transa = static_cast<char>(call.transa);
  record.transb = static_cast<char>(call.transb);
  record.m = call.m;
  record.n = call.n;
  record.k = call.k;
  record.lda = call.lda;
  record.ldb = call.ldb;
  record.ldc = call.ldc;
  record.seconds = std::chrono::duration<double>(stop - start).count();
  record.flops = gemm_flops(gemm_traits<T>::is_complex, call.m, call.n,
                            call.k);
  record.mode = final_mode;
  record.call_site = std::string(call.call_site);
  record.source = res.source;
  record.requested_mode = requested;
  record.fallback = verdict;
  record.guard_residual = residual;
  record.attempts = attempts;
  record.tune = plan.tune;
  record_call(std::move(record));
}

template call_plan plan_call<float>(const gemm_call<float>&);
template call_plan plan_call<double>(const gemm_call<double>&);
template call_plan plan_call<std::complex<float>>(
    const gemm_call<std::complex<float>>&);
template call_plan plan_call<std::complex<double>>(
    const gemm_call<std::complex<double>>&);

template void run_planned<float>(const gemm_call<float>&, const call_plan&,
                                 bool);
template void run_planned<double>(const gemm_call<double>&,
                                  const call_plan&, bool);
template void run_planned<std::complex<float>>(
    const gemm_call<std::complex<float>>&, const call_plan&, bool);
template void run_planned<std::complex<double>>(
    const gemm_call<std::complex<double>>&, const call_plan&, bool);

}  // namespace detail

template <typename T>
void run(const gemm_call<T>& call) {
  detail::run_planned(call, detail::plan_call(call), true);
}

template void run<float>(const gemm_call<float>&);
template void run<double>(const gemm_call<double>&);
template void run<std::complex<float>>(const gemm_call<std::complex<float>>&);
template void run<std::complex<double>>(
    const gemm_call<std::complex<double>>&);

}  // namespace dcmesh::blas
