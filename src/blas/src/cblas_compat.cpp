// cblas_compat.cpp — legacy dcmesh_cblas_* entry points as pure thin
// wrappers over the public C API (include/dcmesh/dcmesh_blas.h).
//
// These carried their own layout-swap and descriptor-fill logic before the
// public API existed; that logic now lives once in dcmesh_blas_c.cpp, and
// each function here is a single dcmesh_gemm() forward.  The enum values
// are numerically identical to the dcmesh_layout / CBLAS numbering, so the
// translation is a cast and a char pick.  Kept (deprecated) so existing
// binaries linking the old names keep working; new code should call
// dcmesh_gemm() or the standard CBLAS names via libdcmesh_intercept.so.

#include "dcmesh/blas/cblas_compat.h"

#include <stdexcept>
#include <string>

#include "dcmesh/dcmesh_blas.h"

namespace {

char trans_char(DCMESH_CBLAS_TRANSPOSE t) {
  switch (t) {
    case DcmeshCblasNoTrans: return 'N';
    case DcmeshCblasTrans: return 'T';
    case DcmeshCblasConjTrans: return 'C';
  }
  return '?';  // rejected downstream as a bad transpose char
}

/// The legacy API reported contract violations by throwing; the C API
/// returns a status.  Preserve the old behaviour at this boundary by
/// rethrowing what the engine would have thrown.
void check(int status) {
  if (status != DCMESH_OK) {
    throw std::invalid_argument(std::string("cblas: ") +
                                dcmesh_last_error());
  }
}

}  // namespace

extern "C" {

void dcmesh_cblas_sgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        float alpha, const float* a, int lda,
                        const float* b, int ldb, float beta, float* c,
                        int ldc) {
  check(dcmesh_gemm('s', static_cast<dcmesh_layout>(layout),
                    trans_char(transa), trans_char(transb), m, n, k, &alpha,
                    a, lda, b, ldb, &beta, c, ldc, nullptr, nullptr));
}

void dcmesh_cblas_dgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        double alpha, const double* a, int lda,
                        const double* b, int ldb, double beta, double* c,
                        int ldc) {
  check(dcmesh_gemm('d', static_cast<dcmesh_layout>(layout),
                    trans_char(transa), trans_char(transb), m, n, k, &alpha,
                    a, lda, b, ldb, &beta, c, ldc, nullptr, nullptr));
}

void dcmesh_cblas_cgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        const void* alpha, const void* a, int lda,
                        const void* b, int ldb, const void* beta, void* c,
                        int ldc) {
  check(dcmesh_gemm('c', static_cast<dcmesh_layout>(layout),
                    trans_char(transa), trans_char(transb), m, n, k, alpha,
                    a, lda, b, ldb, beta, c, ldc, nullptr, nullptr));
}

void dcmesh_cblas_zgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        const void* alpha, const void* a, int lda,
                        const void* b, int ldb, const void* beta, void* c,
                        int ldc) {
  check(dcmesh_gemm('z', static_cast<dcmesh_layout>(layout),
                    trans_char(transa), trans_char(transb), m, n, k, alpha,
                    a, lda, b, ldb, beta, c, ldc, nullptr, nullptr));
}

}  // extern "C"
