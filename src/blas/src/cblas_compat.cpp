#include "dcmesh/blas/cblas_compat.h"

#include <complex>
#include <stdexcept>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_call.hpp"

namespace {

using namespace dcmesh::blas;

transpose to_transpose(DCMESH_CBLAS_TRANSPOSE t) {
  switch (t) {
    case DcmeshCblasNoTrans: return transpose::none;
    case DcmeshCblasTrans: return transpose::trans;
    case DcmeshCblasConjTrans: return transpose::conj_trans;
  }
  throw std::invalid_argument("cblas: bad transpose enum");
}

/// Build and run one gemm_call descriptor with layout handling: row-major
/// computes C_col^T = op(B)^T op(A)^T by swapping operands and m/n.  The C
/// ABI carries no site tag, so CBLAS calls dispatch untagged — they still
/// obey the global compute mode and scoped/api overrides through the same
/// descriptor path as every other entry point.
template <typename T>
void layout_gemm(DCMESH_CBLAS_LAYOUT layout, DCMESH_CBLAS_TRANSPOSE transa,
                 DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                 T alpha, const T* a, int lda, const T* b, int ldb, T beta,
                 T* c, int ldc) {
  const transpose ta = to_transpose(transa);
  const transpose tb = to_transpose(transb);
  gemm_call<T> call;
  call.alpha = alpha;
  call.beta = beta;
  if (layout == DcmeshCblasColMajor) {
    call.transa = ta;
    call.transb = tb;
    call.m = m;
    call.n = n;
    call.k = k;
    call.a = a;
    call.lda = lda;
    call.b = b;
    call.ldb = ldb;
  } else if (layout == DcmeshCblasRowMajor) {
    call.transa = tb;
    call.transb = ta;
    call.m = n;
    call.n = m;
    call.k = k;
    call.a = b;
    call.lda = ldb;
    call.b = a;
    call.ldb = lda;
  } else {
    throw std::invalid_argument("cblas: bad layout enum");
  }
  call.c = c;
  call.ldc = ldc;
  run(call);
}

}  // namespace

extern "C" {

void dcmesh_cblas_sgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        float alpha, const float* a, int lda,
                        const float* b, int ldb, float beta, float* c,
                        int ldc) {
  layout_gemm<float>(layout, transa, transb, m, n, k, alpha, a, lda, b,
                     ldb, beta, c, ldc);
}

void dcmesh_cblas_dgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        double alpha, const double* a, int lda,
                        const double* b, int ldb, double beta, double* c,
                        int ldc) {
  layout_gemm<double>(layout, transa, transb, m, n, k, alpha, a, lda, b,
                      ldb, beta, c, ldc);
}

void dcmesh_cblas_cgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        const void* alpha, const void* a, int lda,
                        const void* b, int ldb, const void* beta, void* c,
                        int ldc) {
  using C = std::complex<float>;
  layout_gemm<C>(layout, transa, transb, m, n, k,
                 *static_cast<const C*>(alpha), static_cast<const C*>(a),
                 lda, static_cast<const C*>(b), ldb,
                 *static_cast<const C*>(beta), static_cast<C*>(c), ldc);
}

void dcmesh_cblas_zgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        const void* alpha, const void* a, int lda,
                        const void* b, int ldb, const void* beta, void* c,
                        int ldc) {
  using Z = std::complex<double>;
  layout_gemm<Z>(layout, transa, transb, m, n, k,
                 *static_cast<const Z*>(alpha), static_cast<const Z*>(a),
                 lda, static_cast<const Z*>(b), ldb,
                 *static_cast<const Z*>(beta), static_cast<Z*>(c), ldc);
}

}  // extern "C"
