#include "dcmesh/blas/cblas_compat.h"

#include <complex>
#include <stdexcept>

#include "dcmesh/blas/blas.hpp"

namespace {

using namespace dcmesh::blas;

transpose to_transpose(DCMESH_CBLAS_TRANSPOSE t) {
  switch (t) {
    case DcmeshCblasNoTrans: return transpose::none;
    case DcmeshCblasTrans: return transpose::trans;
    case DcmeshCblasConjTrans: return transpose::conj_trans;
  }
  throw std::invalid_argument("cblas: bad transpose enum");
}

/// Dispatch one gemm with layout handling: row-major computes
/// C_col^T = op(B)^T op(A)^T by swapping operands and m/n.
template <typename T, typename Fn>
void layout_gemm(Fn&& typed_gemm, DCMESH_CBLAS_LAYOUT layout,
                 DCMESH_CBLAS_TRANSPOSE transa,
                 DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                 T alpha, const T* a, int lda, const T* b, int ldb, T beta,
                 T* c, int ldc) {
  const transpose ta = to_transpose(transa);
  const transpose tb = to_transpose(transb);
  if (layout == DcmeshCblasColMajor) {
    typed_gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else if (layout == DcmeshCblasRowMajor) {
    typed_gemm(tb, ta, n, m, k, alpha, b, ldb, a, lda, beta, c, ldc);
  } else {
    throw std::invalid_argument("cblas: bad layout enum");
  }
}

}  // namespace

extern "C" {

void dcmesh_cblas_sgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        float alpha, const float* a, int lda,
                        const float* b, int ldb, float beta, float* c,
                        int ldc) {
  layout_gemm<float>(
      [](auto... args) { sgemm(args...); }, layout, transa, transb, m, n,
      k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void dcmesh_cblas_dgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        double alpha, const double* a, int lda,
                        const double* b, int ldb, double beta, double* c,
                        int ldc) {
  layout_gemm<double>(
      [](auto... args) { dgemm(args...); }, layout, transa, transb, m, n,
      k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void dcmesh_cblas_cgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        const void* alpha, const void* a, int lda,
                        const void* b, int ldb, const void* beta, void* c,
                        int ldc) {
  using C = std::complex<float>;
  layout_gemm<C>(
      [](auto... args) { cgemm(args...); }, layout, transa, transb, m, n,
      k, *static_cast<const C*>(alpha), static_cast<const C*>(a), lda,
      static_cast<const C*>(b), ldb, *static_cast<const C*>(beta),
      static_cast<C*>(c), ldc);
}

void dcmesh_cblas_zgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        const void* alpha, const void* a, int lda,
                        const void* b, int ldb, const void* beta, void* c,
                        int ldc) {
  using Z = std::complex<double>;
  layout_gemm<Z>(
      [](auto... args) { zgemm(args...); }, layout, transa, transb, m, n,
      k, *static_cast<const Z*>(alpha), static_cast<const Z*>(a), lda,
      static_cast<const Z*>(b), ldb, *static_cast<const Z*>(beta),
      static_cast<Z*>(c), ldc);
}

}  // extern "C"
