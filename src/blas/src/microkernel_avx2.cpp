// microkernel_avx2.cpp — explicit AVX2+FMA register-tile microkernels.
//
// This translation unit alone is compiled with -mavx2 -mfma (see
// src/blas/CMakeLists.txt); it is only dispatched to after a runtime
// __builtin_cpu_supports check, so the rest of the library keeps the
// baseline ISA.  Both kernels perform, per C element, exactly one
// fmadd per packed k step with p ascending — the same operation order as
// the scalar template, so the only possible numerical difference against
// a non-contracting scalar build is FMA's single rounding.
//
// Accumulator budget (16 YMM registers):
//   float  6x16: 12 accumulators + 2 B vectors + 1 A broadcast = 15.
//   double  4x8:  8 accumulators + 2 B vectors + 1 A broadcast = 11.

#include "microkernel.hpp"

#if defined(DCMESH_HAVE_AVX2_KERNELS)

#include <immintrin.h>

namespace dcmesh::blas::detail {

void micro_kernel_avx2_f32(blas_int kc, const float* ap, const float* bp,
                           float* acc) noexcept {
  static_assert(micro_tile<float>::mr == 6 && micro_tile<float>::nr == 16);
  __m256 c00 = _mm256_loadu_ps(acc + 0 * 16);
  __m256 c01 = _mm256_loadu_ps(acc + 0 * 16 + 8);
  __m256 c10 = _mm256_loadu_ps(acc + 1 * 16);
  __m256 c11 = _mm256_loadu_ps(acc + 1 * 16 + 8);
  __m256 c20 = _mm256_loadu_ps(acc + 2 * 16);
  __m256 c21 = _mm256_loadu_ps(acc + 2 * 16 + 8);
  __m256 c30 = _mm256_loadu_ps(acc + 3 * 16);
  __m256 c31 = _mm256_loadu_ps(acc + 3 * 16 + 8);
  __m256 c40 = _mm256_loadu_ps(acc + 4 * 16);
  __m256 c41 = _mm256_loadu_ps(acc + 4 * 16 + 8);
  __m256 c50 = _mm256_loadu_ps(acc + 5 * 16);
  __m256 c51 = _mm256_loadu_ps(acc + 5 * 16 + 8);
  for (blas_int p = 0; p < kc; ++p) {
    const float* a = ap + p * 6;
    const __m256 b0 = _mm256_loadu_ps(bp + p * 16);
    const __m256 b1 = _mm256_loadu_ps(bp + p * 16 + 8);
    __m256 ai = _mm256_broadcast_ss(a + 0);
    c00 = _mm256_fmadd_ps(ai, b0, c00);
    c01 = _mm256_fmadd_ps(ai, b1, c01);
    ai = _mm256_broadcast_ss(a + 1);
    c10 = _mm256_fmadd_ps(ai, b0, c10);
    c11 = _mm256_fmadd_ps(ai, b1, c11);
    ai = _mm256_broadcast_ss(a + 2);
    c20 = _mm256_fmadd_ps(ai, b0, c20);
    c21 = _mm256_fmadd_ps(ai, b1, c21);
    ai = _mm256_broadcast_ss(a + 3);
    c30 = _mm256_fmadd_ps(ai, b0, c30);
    c31 = _mm256_fmadd_ps(ai, b1, c31);
    ai = _mm256_broadcast_ss(a + 4);
    c40 = _mm256_fmadd_ps(ai, b0, c40);
    c41 = _mm256_fmadd_ps(ai, b1, c41);
    ai = _mm256_broadcast_ss(a + 5);
    c50 = _mm256_fmadd_ps(ai, b0, c50);
    c51 = _mm256_fmadd_ps(ai, b1, c51);
  }
  _mm256_storeu_ps(acc + 0 * 16, c00);
  _mm256_storeu_ps(acc + 0 * 16 + 8, c01);
  _mm256_storeu_ps(acc + 1 * 16, c10);
  _mm256_storeu_ps(acc + 1 * 16 + 8, c11);
  _mm256_storeu_ps(acc + 2 * 16, c20);
  _mm256_storeu_ps(acc + 2 * 16 + 8, c21);
  _mm256_storeu_ps(acc + 3 * 16, c30);
  _mm256_storeu_ps(acc + 3 * 16 + 8, c31);
  _mm256_storeu_ps(acc + 4 * 16, c40);
  _mm256_storeu_ps(acc + 4 * 16 + 8, c41);
  _mm256_storeu_ps(acc + 5 * 16, c50);
  _mm256_storeu_ps(acc + 5 * 16 + 8, c51);
}

void micro_kernel_avx2_f64(blas_int kc, const double* ap, const double* bp,
                           double* acc) noexcept {
  static_assert(micro_tile<double>::mr == 4 && micro_tile<double>::nr == 8);
  __m256d c00 = _mm256_loadu_pd(acc + 0 * 8);
  __m256d c01 = _mm256_loadu_pd(acc + 0 * 8 + 4);
  __m256d c10 = _mm256_loadu_pd(acc + 1 * 8);
  __m256d c11 = _mm256_loadu_pd(acc + 1 * 8 + 4);
  __m256d c20 = _mm256_loadu_pd(acc + 2 * 8);
  __m256d c21 = _mm256_loadu_pd(acc + 2 * 8 + 4);
  __m256d c30 = _mm256_loadu_pd(acc + 3 * 8);
  __m256d c31 = _mm256_loadu_pd(acc + 3 * 8 + 4);
  for (blas_int p = 0; p < kc; ++p) {
    const double* a = ap + p * 4;
    const __m256d b0 = _mm256_loadu_pd(bp + p * 8);
    const __m256d b1 = _mm256_loadu_pd(bp + p * 8 + 4);
    __m256d ai = _mm256_broadcast_sd(a + 0);
    c00 = _mm256_fmadd_pd(ai, b0, c00);
    c01 = _mm256_fmadd_pd(ai, b1, c01);
    ai = _mm256_broadcast_sd(a + 1);
    c10 = _mm256_fmadd_pd(ai, b0, c10);
    c11 = _mm256_fmadd_pd(ai, b1, c11);
    ai = _mm256_broadcast_sd(a + 2);
    c20 = _mm256_fmadd_pd(ai, b0, c20);
    c21 = _mm256_fmadd_pd(ai, b1, c21);
    ai = _mm256_broadcast_sd(a + 3);
    c30 = _mm256_fmadd_pd(ai, b0, c30);
    c31 = _mm256_fmadd_pd(ai, b1, c31);
  }
  _mm256_storeu_pd(acc + 0 * 8, c00);
  _mm256_storeu_pd(acc + 0 * 8 + 4, c01);
  _mm256_storeu_pd(acc + 1 * 8, c10);
  _mm256_storeu_pd(acc + 1 * 8 + 4, c11);
  _mm256_storeu_pd(acc + 2 * 8, c20);
  _mm256_storeu_pd(acc + 2 * 8 + 4, c21);
  _mm256_storeu_pd(acc + 3 * 8, c30);
  _mm256_storeu_pd(acc + 3 * 8 + 4, c31);
}

}  // namespace dcmesh::blas::detail

#endif  // DCMESH_HAVE_AVX2_KERNELS
