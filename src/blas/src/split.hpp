#pragma once
// split.hpp — FP32 -> {BF16^N, TF32} operand decomposition (internal).
//
// oneMKL's FLOAT_TO_BF16{,X2,X3} modes represent each FP32 input as a sum
// of 1..3 BF16 values and multiply the component matrices on the systolic
// array with FP32 accumulation; FLOAT_TO_TF32 rounds to TF32.  Products of
// two BF16 (7-bit) or two TF32 (10-bit) mantissas are exact in FP32, so
// multiplying the *rounded FP32 representations* of the components on the
// CPU reproduces the hardware arithmetic bit-for-bit; only the accumulation
// order can differ, which is unspecified on hardware as well.

#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/bf16.hpp"
#include "dcmesh/common/matrix.hpp"
#include "dcmesh/common/tf32.hpp"

namespace dcmesh::blas::detail {

/// Properties of a split mode.
struct split_spec {
  int components;          ///< 1, 2, or 3 component matrices per operand.
  float (*round)(float);   ///< Component rounding function.
};

/// Split parameters for a mode; standard/complex_3m are not split modes
/// (components == 0).
[[nodiscard]] constexpr split_spec split_for(compute_mode mode) noexcept {
  switch (mode) {
    case compute_mode::float_to_bf16:
      return {1, [](float x) { return round_to_bf16(x); }};
    case compute_mode::float_to_bf16x2:
      return {2, [](float x) { return round_to_bf16(x); }};
    case compute_mode::float_to_bf16x3:
      return {3, [](float x) { return round_to_bf16(x); }};
    case compute_mode::float_to_tf32:
      return {1, [](float x) { return round_to_tf32(x); }};
    default:
      return {0, nullptr};
  }
}

/// True when `mode` rounds/splits FP32 GEMM operands.
[[nodiscard]] constexpr bool is_split_mode(compute_mode mode) noexcept {
  return split_for(mode).components > 0;
}

/// Decompose a column-major rows x cols operand (leading dimension ld) into
/// `spec.components` dense component matrices: comp[0] = round(x),
/// comp[c] = round(x - comp[0] - ... - comp[c-1]).  The sum of components
/// converges to x with ~7 extra mantissa bits per BF16 component.
[[nodiscard]] std::vector<matrix<float>> split_operand(
    const float* x, blas_int rows, blas_int cols, blas_int ld,
    split_spec spec);

/// sgemm under a FLOAT_TO_* split mode (defined in gemm_real.cpp; also used
/// by the complex 4M path for its real component products).
void sgemm_split(compute_mode mode, transpose transa, transpose transb,
                 blas_int m, blas_int n, blas_int k, float alpha,
                 const float* a, blas_int lda, const float* b, blas_int ldb,
                 float beta, float* c, blas_int ldc);

/// Component-product pairs retained for an N-component split, in the order
/// they are accumulated: all (i, j) with i + j <= N - 1 (0-based), sorted by
/// ascending total order so the dominant (0,0) product is accumulated first.
/// N=1 -> 1 product; N=2 -> 3; N=3 -> 6 (Table II's 16x, 16/3x, 8/3x).
[[nodiscard]] std::vector<std::pair<int, int>> retained_products(
    int components);

}  // namespace dcmesh::blas::detail
