#pragma once
// split.hpp — FP32 -> {BF16^N, TF32} operand decomposition (internal).
//
// oneMKL's FLOAT_TO_BF16{,X2,X3} modes represent each FP32 input as a sum
// of 1..3 BF16 values and multiply the component matrices on the systolic
// array with FP32 accumulation; FLOAT_TO_TF32 rounds to TF32.  Products of
// two BF16 (7-bit) or two TF32 (10-bit) mantissas are exact in FP32, so
// multiplying the *rounded FP32 representations* of the components on the
// CPU reproduces the hardware arithmetic bit-for-bit; only the accumulation
// order can differ, which is unspecified on hardware as well.
//
// Since the fused-engine rebuild the production path no longer
// materialises dense component matrices: pack_a_split/pack_b_split fuse
// the decomposition into the Goto-style panel packing, emitting all N
// component panels in one pass over the source operand.  split_operand and
// sgemm_split_reference keep the original two-phase arithmetic alive as
// the bit-exactness oracle for tests and the legacy side of the
// fused-vs-legacy bench comparison.

#include <cstdint>
#include <utility>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/bf16.hpp"
#include "dcmesh/common/matrix.hpp"
#include "dcmesh/common/tf32.hpp"

namespace dcmesh::blas::detail {

/// Component rounding family of a split mode.
enum class round_kind { bf16, tf32 };

/// Properties of a split mode.
struct split_spec {
  int components;          ///< 1, 2, or 3 component matrices per operand.
  float (*round)(float);   ///< Component rounding function.
  round_kind kind = round_kind::bf16;  ///< Same rounding, inlinable form.
};

/// Split parameters for a mode; standard/complex_3m are not split modes
/// (components == 0).
[[nodiscard]] constexpr split_spec split_for(compute_mode mode) noexcept {
  switch (mode) {
    case compute_mode::float_to_bf16:
      return {1, [](float x) { return round_to_bf16(x); }, round_kind::bf16};
    case compute_mode::float_to_bf16x2:
      return {2, [](float x) { return round_to_bf16(x); }, round_kind::bf16};
    case compute_mode::float_to_bf16x3:
      return {3, [](float x) { return round_to_bf16(x); }, round_kind::bf16};
    case compute_mode::float_to_tf32:
      return {1, [](float x) { return round_to_tf32(x); }, round_kind::tf32};
    default:
      return {0, nullptr, round_kind::bf16};
  }
}

/// True when `mode` rounds/splits FP32 GEMM operands.
[[nodiscard]] constexpr bool is_split_mode(compute_mode mode) noexcept {
  return split_for(mode).components > 0;
}

/// Decompose a column-major rows x cols operand (leading dimension ld) into
/// `spec.components` dense component matrices: comp[0] = round(x),
/// comp[c] = round(x - comp[0] - ... - comp[c-1]).  The sum of components
/// converges to x with ~7 extra mantissa bits per BF16 component.
/// (Reference path; production packing fuses this into pack_*_split.)
[[nodiscard]] std::vector<matrix<float>> split_operand(
    const float* x, blas_int rows, blas_int cols, blas_int ld,
    split_spec spec);

/// Fused pack of an mc x kc block of op(A): emits spec.components packed
/// component blocks in one pass over the source, each in the exact
/// pack_a strip layout for an `mr`-tall tile, at dst + c * comp_stride
/// for component c.  Component values are identical to
/// split_operand-then-pack_a.
void pack_a_split(const float* a, blas_int lda, transpose op, blas_int row0,
                  blas_int col0, blas_int mc, blas_int kc,
                  const split_spec& spec, float* dst,
                  std::size_t comp_stride, int mr);

/// Fused pack of a kc x nc panel of op(B) into component panels in the
/// pack_b strip layout for an `nr`-wide tile.  With `parallel`, strips
/// are packed by an OpenMP team once the panel clears the fork-cost
/// crossover.
void pack_b_split(const float* b, blas_int ldb, transpose op, blas_int row0,
                  blas_int col0, blas_int kc, blas_int nc,
                  const split_spec& spec, float* dst, std::size_t comp_stride,
                  int nr, bool parallel);

/// sgemm under a FLOAT_TO_* split mode — the fused pack-once engine
/// (defined in gemm_real.cpp; also used by the complex 4M path for its
/// real component products).
void sgemm_split(compute_mode mode, transpose transa, transpose transb,
                 blas_int m, blas_int n, blas_int k, float alpha,
                 const float* a, blas_int lda, const float* b, blas_int ldb,
                 float beta, float* c, blas_int ldc);

/// Native AVX512-BF16 fused engine for the bf16-family split modes
/// (split_avx512bf16.cpp; exists only when the build carries
/// DCMESH_HAVE_AVX512BF16_KERNELS and is dispatched only when
/// bf16_native_active()).  Packs pair-interleaved BF16 component panels
/// with vector converts and accumulates with vdpbf16ps, which sums k in
/// hardware pairs — ULP-equivalent, NOT bit-identical, to sgemm_split.
void sgemm_split_bf16_native(compute_mode mode, transpose transa,
                             transpose transb, blas_int m, blas_int n,
                             blas_int k, float alpha, const float* a,
                             blas_int lda, const float* b, blas_int ldb,
                             float beta, float* c, blas_int ldc);

/// Pre-fusion split GEMM (dense split_operand copies + one blocked pass
/// per retained product).  Bit-identical to sgemm_split under any kernel
/// ISA by construction; kept as the oracle for the exactness tests and
/// the legacy side of bench/micro_gemm's fused-vs-legacy comparison.
void sgemm_split_reference(compute_mode mode, transpose transa,
                           transpose transb, blas_int m, blas_int n,
                           blas_int k, float alpha, const float* a,
                           blas_int lda, const float* b, blas_int ldb,
                           float beta, float* c, blas_int ldc);

/// Component-product pairs retained for an N-component split, in the order
/// they are accumulated: all (i, j) with i + j <= N - 1 (0-based), sorted by
/// ascending total order so the dominant (0,0) product is accumulated first.
/// N=1 -> 1 product; N=2 -> 3; N=3 -> 6 (Table II's 16x, 16/3x, 8/3x).
[[nodiscard]] std::vector<std::pair<int, int>> retained_products(
    int components);

/// Cumulative fused-engine phase timings (seconds) — populated only while
/// profiling is enabled, for bench/micro_gemm's pack/compute breakdown.
struct split_profile {
  std::uint64_t calls = 0;     ///< Fused split GEMM calls profiled.
  double pack_a_seconds = 0;   ///< Fused A-block component packing.
  double pack_b_seconds = 0;   ///< Fused B-panel component packing.
  double compute_seconds = 0;  ///< Microkernel sweeps + C accumulation.
};

void set_split_profiling(bool enabled) noexcept;
[[nodiscard]] bool split_profiling_enabled() noexcept;
[[nodiscard]] split_profile split_profile_snapshot() noexcept;
void reset_split_profile() noexcept;
/// Accumulate one call's phase timings (thread-safe; engine-internal).
void split_profile_add(double pack_a_s, double pack_b_s,
                       double compute_s) noexcept;

}  // namespace dcmesh::blas::detail
