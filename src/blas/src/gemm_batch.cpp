#include "dcmesh/blas/gemm_batch.hpp"

#include <stdexcept>

namespace dcmesh::blas {
namespace {

template <typename T, typename Fn>
void run_batch(Fn&& typed_gemm, transpose transa, transpose transb,
               blas_int m, blas_int n, blas_int k, T alpha, const T* a,
               blas_int lda, blas_int stride_a, const T* b, blas_int ldb,
               blas_int stride_b, T beta, T* c, blas_int ldc,
               blas_int stride_c, blas_int batch) {
  if (batch < 0) throw std::invalid_argument("gemm_batch: negative batch");
  // Footprint checks: a stride of 0 shares the operand across the batch
  // (legal for inputs); output slots must not overlap.
  const blas_int cols_a = transa == transpose::none ? k : m;
  const blas_int cols_b = transb == transpose::none ? n : k;
  if (batch > 1) {
    if (stride_a != 0 && stride_a < lda * cols_a) {
      throw std::invalid_argument("gemm_batch: stride_a overlaps");
    }
    if (stride_b != 0 && stride_b < ldb * cols_b) {
      throw std::invalid_argument("gemm_batch: stride_b overlaps");
    }
    if (stride_c < ldc * n && m > 0 && n > 0) {
      throw std::invalid_argument("gemm_batch: stride_c overlaps");
    }
  }
  for (blas_int i = 0; i < batch; ++i) {
    typed_gemm(transa, transb, m, n, k, alpha, a + i * stride_a, lda,
               b + i * stride_b, ldb, beta, c + i * stride_c, ldc);
  }
}

}  // namespace

template <>
void gemm_batch_strided<float>(transpose transa, transpose transb,
                               blas_int m, blas_int n, blas_int k,
                               float alpha, const float* a, blas_int lda,
                               blas_int stride_a, const float* b,
                               blas_int ldb, blas_int stride_b, float beta,
                               float* c, blas_int ldc, blas_int stride_c,
                               blas_int batch) {
  run_batch<float>([](auto... args) { sgemm(args...); }, transa, transb, m,
                   n, k, alpha, a, lda, stride_a, b, ldb, stride_b, beta, c,
                   ldc, stride_c, batch);
}

template <>
void gemm_batch_strided<double>(transpose transa, transpose transb,
                                blas_int m, blas_int n, blas_int k,
                                double alpha, const double* a, blas_int lda,
                                blas_int stride_a, const double* b,
                                blas_int ldb, blas_int stride_b, double beta,
                                double* c, blas_int ldc, blas_int stride_c,
                                blas_int batch) {
  run_batch<double>([](auto... args) { dgemm(args...); }, transa, transb,
                    m, n, k, alpha, a, lda, stride_a, b, ldb, stride_b,
                    beta, c, ldc, stride_c, batch);
}

template <>
void gemm_batch_strided<std::complex<float>>(
    transpose transa, transpose transb, blas_int m, blas_int n, blas_int k,
    std::complex<float> alpha, const std::complex<float>* a, blas_int lda,
    blas_int stride_a, const std::complex<float>* b, blas_int ldb,
    blas_int stride_b, std::complex<float> beta, std::complex<float>* c,
    blas_int ldc, blas_int stride_c, blas_int batch) {
  run_batch<std::complex<float>>([](auto... args) { cgemm(args...); },
                                 transa, transb, m, n, k, alpha, a, lda,
                                 stride_a, b, ldb, stride_b, beta, c, ldc,
                                 stride_c, batch);
}

template <>
void gemm_batch_strided<std::complex<double>>(
    transpose transa, transpose transb, blas_int m, blas_int n, blas_int k,
    std::complex<double> alpha, const std::complex<double>* a, blas_int lda,
    blas_int stride_a, const std::complex<double>* b, blas_int ldb,
    blas_int stride_b, std::complex<double> beta, std::complex<double>* c,
    blas_int ldc, blas_int stride_c, blas_int batch) {
  run_batch<std::complex<double>>([](auto... args) { zgemm(args...); },
                                  transa, transb, m, n, k, alpha, a, lda,
                                  stride_a, b, ldb, stride_b, beta, c, ldc,
                                  stride_c, batch);
}

}  // namespace dcmesh::blas
