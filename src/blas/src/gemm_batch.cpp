#include "dcmesh/blas/gemm_batch.hpp"

#include <optional>
#include <stdexcept>
#include <string>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/trace/tracer.hpp"
#include "dispatch_internal.hpp"

namespace dcmesh::blas {
namespace {

template <typename T>
void run_batch(transpose transa, transpose transb, blas_int m, blas_int n,
               blas_int k, T alpha, const T* a, blas_int lda,
               blas_int stride_a, const T* b, blas_int ldb,
               blas_int stride_b, T beta, T* c, blas_int ldc,
               blas_int stride_c, blas_int batch,
               std::string_view call_site) {
  if (batch < 0) throw std::invalid_argument("gemm_batch: negative batch");
  // Each batch entry dispatches like a standalone gemm, so under a split
  // mode every entry runs the fused pack-once engine; the per-thread
  // arena makes the loop allocation-free after the first entry (slots are
  // released between entries — see pack_arena.hpp lifetime rules).
  // Footprint checks: a stride of 0 shares the operand across the batch
  // (legal for inputs); output slots must not overlap.
  const blas_int cols_a = transa == transpose::none ? k : m;
  const blas_int cols_b = transb == transpose::none ? n : k;
  if (batch > 1) {
    if (stride_a != 0 && stride_a < lda * cols_a) {
      throw std::invalid_argument("gemm_batch: stride_a overlaps");
    }
    if (stride_b != 0 && stride_b < ldb * cols_b) {
      throw std::invalid_argument("gemm_batch: stride_b overlaps");
    }
    if (stride_c < ldc * n && m > 0 && n > 0) {
      throw std::invalid_argument("gemm_batch: stride_c overlaps");
    }
  }
  // Each problem is one descriptor through the common dispatcher, but the
  // whole batch shares ONE resolution: the per-site policy — and, for an
  // AUTO rule, the autotuner — is consulted once per batched call, since
  // every problem has the same site and shape.  Each problem still gets
  // its own verbose record (mirroring how MKL_VERBOSE reports batched
  // calls), so the metrics registry accumulates batch x 2mnk flops.
  gemm_call<T> call;
  call.transa = transa;
  call.transb = transb;
  call.m = m;
  call.n = n;
  call.k = k;
  call.alpha = alpha;
  call.lda = lda;
  call.ldb = ldb;
  call.beta = beta;
  call.ldc = ldc;
  call.call_site = call_site;
  const detail::call_plan plan = detail::plan_call(call);

  // One trace span covers the whole batched call (not one per element);
  // flops is the batch total so timeline throughput stays truthful.
  std::optional<trace::span> span;
  if (trace::tracer::instance().enabled()) {
    span.emplace(call_site.empty()
                     ? std::string(detail::gemm_traits<T>::routine) +
                           "_BATCH"
                     : std::string(call_site),
                 "gemm_batch");
    span->arg("routine", detail::gemm_traits<T>::routine);
    span->arg("batch", static_cast<std::int64_t>(batch));
    span->arg("m", static_cast<std::int64_t>(m));
    span->arg("n", static_cast<std::int64_t>(n));
    span->arg("k", static_cast<std::int64_t>(k));
    span->arg("flops",
              static_cast<double>(batch) *
                  gemm_flops(detail::gemm_traits<T>::is_complex, m, n, k));
    span->arg("mode", info(plan.res.mode).env_token);
    if (plan.tune != auto_provenance::none) {
      span->arg("tune", name(plan.tune));
    }
  }

  for (blas_int i = 0; i < batch; ++i) {
    call.a = a + i * stride_a;
    call.b = b + i * stride_b;
    call.c = c + i * stride_c;
    detail::run_planned(call, plan, /*emit_span=*/false);
  }
}

}  // namespace

template <typename T>
void gemm_batch_strided(transpose transa, transpose transb, blas_int m,
                        blas_int n, blas_int k, T alpha, const T* a,
                        blas_int lda, blas_int stride_a, const T* b,
                        blas_int ldb, blas_int stride_b, T beta, T* c,
                        blas_int ldc, blas_int stride_c, blas_int batch,
                        std::string_view call_site) {
  run_batch<T>(transa, transb, m, n, k, alpha, a, lda, stride_a, b, ldb,
               stride_b, beta, c, ldc, stride_c, batch, call_site);
}

#define DCMESH_INSTANTIATE_GEMM_BATCH(T)                                   \
  template void gemm_batch_strided<T>(                                    \
      transpose, transpose, blas_int, blas_int, blas_int, T, const T*,    \
      blas_int, blas_int, const T*, blas_int, blas_int, T, T*, blas_int,  \
      blas_int, blas_int, std::string_view);

DCMESH_INSTANTIATE_GEMM_BATCH(float)
DCMESH_INSTANTIATE_GEMM_BATCH(double)
DCMESH_INSTANTIATE_GEMM_BATCH(std::complex<float>)
DCMESH_INSTANTIATE_GEMM_BATCH(std::complex<double>)
#undef DCMESH_INSTANTIATE_GEMM_BATCH

}  // namespace dcmesh::blas
