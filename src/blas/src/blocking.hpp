#pragma once
// blocking.hpp — runtime MC/NC cache-blocking resolution (internal).
//
// The blocked core's Goto blocking used to be three compile-time
// constants; MC and NC are now per-call runtime values so the autotuner
// can persist per-shape winners in the wisdom store.  KC stays the
// compile-time kBlockK constant: it partitions the accumulation and is
// part of the golden-trajectory numerical contract, while MC/NC only
// partition the *output* — every C element's accumulation chain is
// identical under any legal MC/NC, which is what makes retuned
// blockings bit-identical (locked by test) and therefore safe to apply
// from a cache without revalidating numerics.
//
// Legal blockings are multiples of the per-tier tile quanta (the lcm of
// every element type's MR for rows, NR for columns) so interior blocks
// keep each type's packed strips exactly full.  The per-call override is
// thread-local and scoped: the dispatcher installs the planned blocking
// around the whole guarded run so re-runs and health-scan repeats see
// the same partition, and resolves it ONCE on the calling thread —
// worker-team threads never consult it.

#include <optional>

#include "dcmesh/blas/blas.hpp"
#include "kernel_isa.hpp"

namespace dcmesh::blas::detail {

/// One MC/NC choice (elements).  KC is always kBlockK.
struct gemm_blocking {
  blas_int mc;
  blas_int nc;
  friend bool operator==(const gemm_blocking& a,
                         const gemm_blocking& b) noexcept {
    return a.mc == b.mc && a.nc == b.nc;
  }
};

/// Row/column quanta per tier: lcm of every element type's MR (rows) /
/// NR (columns).  scalar+avx2 tiles (6,4,4,2)x(16,8,4,4) -> 12 x 16;
/// avx512 tiles (14,8,4,2)x(32,16,4,4) -> 56 x 32.
[[nodiscard]] blas_int blocking_row_quantum(kernel_isa isa) noexcept;
[[nodiscard]] blas_int blocking_col_quantum(kernel_isa isa) noexcept;

/// The tier's default blocking (the historical kBlockM/kBlockN for
/// scalar and avx2; a taller MC for the avx512 tiles).
[[nodiscard]] gemm_blocking default_blocking(kernel_isa isa) noexcept;

/// Round an arbitrary request to the nearest legal blocking for `isa`:
/// quantum multiples, clamped to [1 quantum, kMaxBlockM/kMaxBlockN].
/// Non-positive requests resolve to the tier default.
inline constexpr blas_int kMaxBlockM = 2048;
inline constexpr blas_int kMaxBlockN = 8192;
[[nodiscard]] gemm_blocking legalize_blocking(kernel_isa isa, blas_int mc,
                                              blas_int nc) noexcept;

/// The blocking the current call should use: the innermost active scoped
/// override on this thread, else the active tier's default.  Resolve
/// once per GEMM call, on the calling thread.
[[nodiscard]] gemm_blocking effective_blocking() noexcept;

/// Install a thread-local blocking override for the lifetime of the
/// scope.  Requests are legalized against the active tier; {0, 0} (or
/// any non-positive pair) is a no-op scope that keeps the default.
class scoped_blocking {
 public:
  scoped_blocking(blas_int mc, blas_int nc) noexcept;
  ~scoped_blocking();
  scoped_blocking(const scoped_blocking&) = delete;
  scoped_blocking& operator=(const scoped_blocking&) = delete;

 private:
  gemm_blocking prev_{0, 0};
  bool prev_active_ = false;
  bool engaged_ = false;
};

}  // namespace dcmesh::blas::detail
