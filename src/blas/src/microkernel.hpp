#pragma once
// microkernel.hpp — register-tile microkernels and their dispatch (internal).
//
// The MR x NR tile shapes, the portable scalar microkernel template, and
// the runtime kernel descriptor that swaps in the explicit AVX2+FMA or
// AVX-512 kernels for float/double when kernel_isa resolves to avx2 or
// avx512.  Every microkernel computes acc += Ap * Bp over kc packed
// steps with the SAME per-element operation order (p ascending, one
// fused or mul+add step per p), so swapping kernels can change results
// only through FMA contraction — never through reassociation.  Tile
// shapes differ per tier (they only relocate which SIMD lane an element
// lands in, not its accumulation chain), so the packing and blocked
// loops read MR/NR from the resolved kernel_desc instead of the
// compile-time micro_tile.  The resolve_* functions live in
// kernel_isa.cpp so that only the library (compiled with the
// DCMESH_HAVE_AVX2_KERNELS / DCMESH_HAVE_AVX512_KERNELS flags) decides
// whether the ISA symbols exist; headers stay ODR-safe for tests that
// include them.

#include <complex>
#include <type_traits>

#include "dcmesh/blas/blas.hpp"
#include "kernel_isa.hpp"

namespace dcmesh::blas::detail {

/// Baseline register-tile shape per element type (scalar and avx2
/// tiers).  float uses a 6x16 tile (12 YMM accumulators + 2 B vectors +
/// 1 A broadcast = 15 of 16 registers at AVX2 widths); double a 4x8
/// tile (8 accumulators).  The complex tiles feed the scalar kernel
/// only.  The avx512 tier widens float to 14x32 and double to 8x16
/// (28/16 ZMM accumulators + 2 B + 1 broadcast of 32 registers); those
/// shapes are carried by kernel_desc, not by this trait.
template <typename T>
struct micro_tile {
  static constexpr int mr = 6;
  static constexpr int nr = 16;
};
template <>
struct micro_tile<double> {
  static constexpr int mr = 4;
  static constexpr int nr = 8;
};
template <>
struct micro_tile<std::complex<float>> {
  static constexpr int mr = 4;
  static constexpr int nr = 4;
};
template <>
struct micro_tile<std::complex<double>> {
  static constexpr int mr = 2;
  static constexpr int nr = 4;
};

/// Upper bounds over every tier's tile shape — sizes the stack
/// accumulator tile and any MR/NR-dependent scratch.
inline constexpr int kMaxMr = 14;  // avx512 f32
inline constexpr int kMaxNr = 32;  // avx512 f32

/// Microkernel signature: acc += Ap * Bp over kc packed steps, where Ap is
/// an MR-tall strip, Bp an NR-wide strip, and acc an MR x NR row-major tile.
template <typename T>
using micro_kernel_fn = void (*)(blas_int kc, const T* ap, const T* bp,
                                 T* acc);

/// A resolved microkernel plus the tile shape it packs for.  mr/nr are
/// runtime values because the avx512 tier uses wider tiles than the
/// baseline micro_tile trait; resolve once per GEMM call and thread the
/// descriptor through packing and the blocked loops.
template <typename T>
struct kernel_desc {
  micro_kernel_fn<T> fn;
  int mr;
  int nr;
};

/// Portable MR x NR register-tile kernel (all element types).
template <typename T>
void micro_kernel_scalar(blas_int kc, const T* ap, const T* bp,
                         T* __restrict acc) noexcept {
  constexpr int mr = micro_tile<T>::mr;
  constexpr int nr = micro_tile<T>::nr;
  for (blas_int p = 0; p < kc; ++p) {
    const T* a = ap + p * mr;
    const T* b = bp + p * nr;
    for (int i = 0; i < mr; ++i) {
      const T ai = a[i];
#if defined(DCMESH_HAVE_OPENMP)
#pragma omp simd
#endif
      for (int j = 0; j < nr; ++j) {
        acc[i * nr + j] += ai * b[j];
      }
    }
  }
}

/// Explicit AVX2+FMA kernels (microkernel_avx2.cpp; compiled only when the
/// toolchain supports -mavx2 -mfma and dispatched only when the CPU does).
void micro_kernel_avx2_f32(blas_int kc, const float* ap, const float* bp,
                           float* acc) noexcept;
void micro_kernel_avx2_f64(blas_int kc, const double* ap, const double* bp,
                           double* acc) noexcept;

/// Explicit AVX-512 kernels (microkernel_avx512.cpp; compiled only when
/// the toolchain supports -mavx512{f,bw,dq,vl} and dispatched only when
/// the CPU does).  float packs a 14x32 tile, double an 8x16 tile.
void micro_kernel_avx512_f32(blas_int kc, const float* ap, const float* bp,
                             float* acc) noexcept;
void micro_kernel_avx512_f64(blas_int kc, const double* ap,
                             const double* bp, double* acc) noexcept;

/// ISA-resolved kernel descriptors for the real types (kernel_isa.cpp).
[[nodiscard]] kernel_desc<float> resolve_kernel_desc_f32() noexcept;
[[nodiscard]] kernel_desc<double> resolve_kernel_desc_f64() noexcept;

/// The kernel + tile shape a GEMM call should use for element type T
/// under the active ISA.  Resolve once per call and reuse — the lookup
/// reads an atomic.
template <typename T>
[[nodiscard]] kernel_desc<T> select_kernel_desc() noexcept {
  if constexpr (std::is_same_v<T, float>) {
    return resolve_kernel_desc_f32();
  } else if constexpr (std::is_same_v<T, double>) {
    return resolve_kernel_desc_f64();
  } else {
    return {&micro_kernel_scalar<T>, micro_tile<T>::mr, micro_tile<T>::nr};
  }
}

/// Invoke a resolved kernel on one tile.  The scalar kernel is recognised
/// by address and called directly so the compiler can inline it into the
/// blocked loop (keeping the accumulator tile in registers across the
/// fill/kernel/epilogue sequence); only the explicit ISA kernels go
/// through the pointer.  The branch is perfectly predicted — the kernel is
/// fixed for the duration of a GEMM call.
template <typename T>
inline void call_micro_kernel(micro_kernel_fn<T> kernel, blas_int kc,
                              const T* ap, const T* bp, T* acc) noexcept {
  if (kernel == &micro_kernel_scalar<T>) {
    micro_kernel_scalar<T>(kc, ap, bp, acc);
  } else {
    kernel(kc, ap, bp, acc);
  }
}

}  // namespace dcmesh::blas::detail
