#include "dcmesh/blas/prepack.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "dcmesh/trace/metrics.hpp"
#include "dcmesh/trace/tracer.hpp"
#include "gemm_kernel.hpp"
#include "prepack_cache.hpp"

namespace dcmesh::blas {

namespace detail {

namespace {

struct cache_key {
  const void* b = nullptr;
  blas_int ldb = 0;
  int op = 0;
  blas_int k = 0;
  blas_int n = 0;
  int tag = 0;

  bool operator==(const cache_key&) const = default;
};

struct cache_entry {
  cache_key key;
  std::shared_ptr<const prepacked_b_panels> panels;
};

std::mutex g_mutex;
std::vector<cache_entry> g_entries;          // tiny (a handful per step)
std::atomic<std::size_t> g_count{0};         // mirrors g_entries.size()

}  // namespace

bool prepack_cache_empty() noexcept {
  return g_count.load(std::memory_order_relaxed) == 0;
}

std::shared_ptr<const prepacked_b_panels> take_prepacked(const void* b,
                                                         blas_int ldb, int op,
                                                         blas_int k,
                                                         blas_int n, int tag) {
  const cache_key key{b, ldb, op, k, n, tag};
  std::lock_guard<std::mutex> lock(g_mutex);
  for (auto it = g_entries.begin(); it != g_entries.end(); ++it) {
    if (it->key == key) {
      auto panels = std::move(it->panels);
      g_entries.erase(it);
      g_count.store(g_entries.size(), std::memory_order_relaxed);
      return panels;
    }
  }
  return nullptr;
}

void publish_prepacked(const void* b, blas_int ldb, int op, blas_int k,
                       blas_int n, int tag,
                       std::shared_ptr<const prepacked_b_panels> panels) {
  const cache_key key{b, ldb, op, k, n, tag};
  std::lock_guard<std::mutex> lock(g_mutex);
  for (cache_entry& entry : g_entries) {
    if (entry.key == key) {
      entry.panels = std::move(panels);
      return;
    }
  }
  g_entries.push_back(cache_entry{key, std::move(panels)});
  g_count.store(g_entries.size(), std::memory_order_relaxed);
}

}  // namespace detail

template <typename T>
void prepack_b(transpose transb, blas_int k, blas_int n, const T* b,
               blas_int ldb) {
  using detail::kBlockK;
  if (k <= 0 || n <= 0 || b == nullptr) return;

  trace::span sp("blas/prepack_b", "sched");
  sp.arg("k", std::int64_t{k});
  sp.arg("n", std::int64_t{n});

  // Lay the panels out for the tile + blocking the consumer will resolve
  // (recorded in the entry; a consumer that resolves differently drops
  // the entry rather than misreading it).
  const int nr = detail::select_kernel_desc<T>().nr;
  const blas_int block_n = detail::effective_blocking().nc;
  const blas_int jc_blocks = (n + block_n - 1) / block_n;
  const blas_int pc_blocks = (k + kBlockK - 1) / kBlockK;

  auto panels = std::make_shared<detail::prepacked_b_panels>();
  panels->pc_blocks = pc_blocks;
  panels->block_n = block_n;
  panels->block_k = kBlockK;
  panels->nr = nr;
  panels->offsets.resize(
      static_cast<std::size_t>(jc_blocks) * pc_blocks);

  // First pass: sizes.  Same (jc, pc) walk as gemm_blocked_accumulate.
  std::size_t total = 0;
  for (blas_int jb = 0; jb < jc_blocks; ++jb) {
    const blas_int jc = jb * block_n;
    const blas_int nc = std::min<blas_int>(block_n, n - jc);
    const blas_int n_strips = (nc + nr - 1) / nr;
    for (blas_int pb = 0; pb < pc_blocks; ++pb) {
      const blas_int pc = pb * kBlockK;
      const blas_int kc = std::min<blas_int>(kBlockK, k - pc);
      panels->offsets[static_cast<std::size_t>(jb) * pc_blocks + pb] = total;
      total += static_cast<std::size_t>(n_strips) * kc * nr;
    }
  }

  std::shared_ptr<T[]> storage(new T[total]);
  panels->base = storage.get();
  panels->storage = std::move(storage);

  // Second pass: pack.  pack_b is the very routine the inline path runs,
  // so the panel bytes are bit-identical to an inline pack; its internal
  // team sweep shares the scheduler's worker set.
  T* base = static_cast<T*>(const_cast<void*>(panels->base));
  for (blas_int jb = 0; jb < jc_blocks; ++jb) {
    const blas_int jc = jb * block_n;
    const blas_int nc = std::min<blas_int>(block_n, n - jc);
    for (blas_int pb = 0; pb < pc_blocks; ++pb) {
      const blas_int pc = pb * kBlockK;
      const blas_int kc = std::min<blas_int>(kBlockK, k - pc);
      T* dst =
          base + panels->offsets[static_cast<std::size_t>(jb) * pc_blocks + pb];
      detail::pack_b(b, ldb, transb, pc, jc, kc, nc, dst, nr,
                     /*parallel=*/true);
    }
  }

  detail::publish_prepacked(b, ldb, static_cast<int>(transb), k, n,
                            detail::prepack_type_tag<T>(),
                            std::move(panels));
  trace::record_sched_counter("prepacks");
}

template void prepack_b<float>(transpose, blas_int, blas_int, const float*,
                               blas_int);
template void prepack_b<double>(transpose, blas_int, blas_int, const double*,
                                blas_int);
template void prepack_b<std::complex<float>>(transpose, blas_int, blas_int,
                                             const std::complex<float>*,
                                             blas_int);
template void prepack_b<std::complex<double>>(transpose, blas_int, blas_int,
                                              const std::complex<double>*,
                                              blas_int);

void clear_prepacked() {
  std::lock_guard<std::mutex> lock(detail::g_mutex);
  detail::g_entries.clear();
  detail::g_count.store(0, std::memory_order_relaxed);
}

std::size_t prepacked_count() {
  return detail::g_count.load(std::memory_order_relaxed);
}

}  // namespace dcmesh::blas
