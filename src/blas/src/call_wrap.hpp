#pragma once
// call_wrap.hpp — timing + verbose-log wrapper shared by the public entry
// points (internal).

#include <chrono>
#include <string>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/verbose.hpp"

namespace dcmesh::blas::detail {

/// Run `body`, time it, and push a call_record for routine `name`.
template <typename Body>
void timed_call(const char* name, transpose transa, transpose transb,
                blas_int m, blas_int n, blas_int k, blas_int lda,
                blas_int ldb, blas_int ldc, bool is_complex,
                compute_mode mode, Body&& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  call_record record;
  record.routine = name;
  record.transa = static_cast<char>(transa);
  record.transb = static_cast<char>(transb);
  record.m = m;
  record.n = n;
  record.k = k;
  record.lda = lda;
  record.ldb = ldb;
  record.ldc = ldc;
  record.seconds = std::chrono::duration<double>(stop - start).count();
  record.flops = gemm_flops(is_complex, m, n, k);
  record.mode = mode;
  record_call(std::move(record));
}

}  // namespace dcmesh::blas::detail
