// gemm_real.cpp — sgemm/dgemm: the FP32 split-mode arithmetic and the
// legacy positional shims over the descriptor dispatcher.

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/common/env.hpp"
#include "gemm_kernel.hpp"
#include "gemm_modes.hpp"
#include "split.hpp"

#if defined(DCMESH_HAVE_OPENMP)
#include <omp.h>
#endif

namespace dcmesh::blas {
namespace detail {
namespace {

// Thread-count override (0 = OpenMP default).
int g_requested_threads = 0;

}  // namespace

/// sgemm under a FLOAT_TO_* mode: decompose both operands, then accumulate
/// the retained component products through the standard blocked kernel with
/// FP32 accumulation — the software analogue of the XMX systolic pipeline.
void sgemm_split(compute_mode mode, transpose transa, transpose transb,
                 blas_int m, blas_int n, blas_int k, float alpha,
                 const float* a, blas_int lda, const float* b, blas_int ldb,
                 float beta, float* c, blas_int ldc) {
  validate_gemm_args(transa, transb, m, n, k, a, lda, b, ldb, c, ldc,
                     /*needs_ab=*/alpha != 0.0f);
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0f) return;

  const split_spec spec = split_for(mode);
  const blas_int rows_a = transa == transpose::none ? m : k;
  const blas_int cols_a = transa == transpose::none ? k : m;
  const blas_int rows_b = transb == transpose::none ? k : n;
  const blas_int cols_b = transb == transpose::none ? n : k;

  const auto a_comp = split_operand(a, rows_a, cols_a, lda, spec);
  const auto b_comp = split_operand(b, rows_b, cols_b, ldb, spec);

  for (const auto& [i, j] : retained_products(spec.components)) {
    gemm_blocked_accumulate(transa, transb, m, n, k, alpha,
                            a_comp[static_cast<std::size_t>(i)].data(),
                            rows_a,
                            b_comp[static_cast<std::size_t>(j)].data(),
                            rows_b, c, ldc);
  }
}

void gemm_at_mode(compute_mode mode, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k, float alpha,
                  const float* a, blas_int lda, const float* b, blas_int ldb,
                  float beta, float* c, blas_int ldc) {
  if (is_split_mode(mode)) {
    sgemm_split(mode, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                c, ldc);
  } else {
    // COMPLEX_3M has no effect on real GEMM; run standard arithmetic.
    gemm_blocked(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                 ldc);
  }
}

void gemm_at_mode(compute_mode /*mode*/, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k, double alpha,
                  const double* a, blas_int lda, const double* b,
                  blas_int ldb, double beta, double* c, blas_int ldc) {
  // Alternative compute modes apply to single precision only; dgemm always
  // runs standard FP64 arithmetic (paper Section IV-C: the FP64 SCF path
  // must stay exact).
  gemm_blocked(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
               ldc);
}

}  // namespace detail

void sgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, float alpha, const float* a, blas_int lda,
           const float* b, blas_int ldb, float beta, float* c, blas_int ldc) {
  run(gemm_call<float>{transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                       c, ldc});
}

void dgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, double alpha, const double* a, blas_int lda,
           const double* b, blas_int ldb, double beta, double* c,
           blas_int ldc) {
  run(gemm_call<double>{transa, transb, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc});
}

void set_num_threads(int threads) {
  detail::g_requested_threads = threads < 0 ? 0 : threads;
#if defined(DCMESH_HAVE_OPENMP)
  if (threads > 0) omp_set_num_threads(threads);
#endif
}

int get_num_threads() {
#if defined(DCMESH_HAVE_OPENMP)
  if (detail::g_requested_threads > 0) return detail::g_requested_threads;
  // Honour MKL_NUM_THREADS like oneMKL (environment wins over the OpenMP
  // default, loses to an explicit set_num_threads call).
  const long env = env_get_int("MKL_NUM_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace dcmesh::blas
