// gemm_real.cpp — sgemm/dgemm: the fused split-mode engine and the legacy
// positional shims over the descriptor dispatcher.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/common/env.hpp"
#include "gemm_kernel.hpp"
#include "gemm_modes.hpp"
#include "split.hpp"

#if defined(DCMESH_HAVE_OPENMP)
#include <omp.h>
#endif

namespace dcmesh::blas {
namespace detail {
namespace {

// Thread-count override (0 = OpenMP default).
int g_requested_threads = 0;

[[nodiscard]] double engine_now() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// sgemm under a FLOAT_TO_* mode — the fused pack-once engine.
///
/// Instead of materialising N dense component copies of A and B and
/// running one full blocked pass (with its own packing) per retained
/// product, the decomposition is fused into the panel packing: every
/// (pc, jc) B-panel and (ic, pc) A-block is read from the source operand
/// exactly once and emitted as N component panels in the shared packed
/// layout.  All retained products then sweep the packed panels with the
/// dispatched microkernel.
///
/// Bit-level contract: for every C element the reference path applies
/// `c += alpha * acc(product, pc)` product-major with pc ascending inside
/// each product, where acc is the microkernel's FP32 accumulation over
/// one kBlockK slice.  The tile sweep below replays exactly that order
/// (products outer, pc panels inner, same kBlockK partition, same
/// microkernel, same one-rounding epilogue), so results are bit-identical
/// to sgemm_split_reference under any kernel ISA — the fusion moves
/// memory traffic, not arithmetic.
void sgemm_split(compute_mode mode, transpose transa, transpose transb,
                 blas_int m, blas_int n, blas_int k, float alpha,
                 const float* a, blas_int lda, const float* b, blas_int ldb,
                 float beta, float* c, blas_int ldc) {
  validate_gemm_args(transa, transb, m, n, k, a, lda, b, ldb, c, ldc,
                     /*needs_ab=*/alpha != 0.0f);
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0f) return;

  const split_spec spec = split_for(mode);
  const auto products = retained_products(spec.components);
  const kernel_desc<float> desc = select_kernel_desc<float>();
  const int mr = desc.mr;
  const int nr = desc.nr;
  const gemm_blocking blk = effective_blocking();
  const blas_int block_m = blk.mc;
  const blas_int block_n = blk.nc;
  const kernel_isa isa = active_kernel_isa();
  const int ncomp = spec.components;
  const blas_int num_pc = (k + kBlockK - 1) / kBlockK;

  const bool profile = split_profiling_enabled();
  double pack_b_seconds = 0.0;
  std::atomic<std::int64_t> pack_a_ns{0};
  std::atomic<std::int64_t> compute_ns{0};

  for (blas_int jc = 0; jc < n; jc += block_n) {
    const blas_int nc = std::min<blas_int>(block_n, n - jc);
    const blas_int n_strips = (nc + nr - 1) / nr;
    // Uniform per-(panel, component) stride sized for a full kBlockK panel
    // so addressing stays multiplicative; the last panel is just shorter.
    const std::size_t b_stride =
        static_cast<std::size_t>(n_strips) * kBlockK * nr;
    float* bpack = pack_arena::for_thread().acquire<float>(
        kArenaSlotB,
        static_cast<std::size_t>(num_pc) * ncomp * b_stride);

    const double tb0 = profile ? engine_now() : 0.0;
    for (blas_int t = 0; t < num_pc; ++t) {
      const blas_int pc = t * kBlockK;
      const blas_int kc = std::min<blas_int>(kBlockK, k - pc);
      pack_b_split(b, ldb, transb, pc, jc, kc, nc, spec,
                   bpack + static_cast<std::size_t>(t) * ncomp * b_stride,
                   b_stride, nr, /*parallel=*/true);
    }
    if (profile) pack_b_seconds += engine_now() - tb0;

    const blas_int ic_blocks = (m + block_m - 1) / block_m;
    const auto process_block = [&](blas_int ib) {
      const blas_int ic = ib * block_m;
      const blas_int mc = std::min<blas_int>(block_m, m - ic);
      const blas_int m_strips = (mc + mr - 1) / mr;
      const std::size_t a_stride =
          static_cast<std::size_t>(m_strips) * kBlockK * mr;
      float* apack = pack_arena::for_thread().acquire<float>(
          kArenaSlotA,
          static_cast<std::size_t>(num_pc) * ncomp * a_stride);

      const double ta0 = profile ? engine_now() : 0.0;
      for (blas_int t = 0; t < num_pc; ++t) {
        const blas_int pc = t * kBlockK;
        const blas_int kc = std::min<blas_int>(kBlockK, k - pc);
        pack_a_split(a, lda, transa, ic, pc, mc, kc, spec,
                     apack + static_cast<std::size_t>(t) * ncomp * a_stride,
                     a_stride, mr);
      }
      const double ta1 = profile ? engine_now() : 0.0;

      // Sweep order: product-major, pc-panel ascending, tiles inside —
      // every C element sees the reference op order (bit-identity), and
      // each packed (panel, component) pair stays cache-resident for its
      // whole js/is tile sweep instead of being re-streamed per tile.
      float acc[kMaxMr * kMaxNr];
      for (const auto& [pi, pj] : products) {
        for (blas_int t = 0; t < num_pc; ++t) {
          const blas_int kc = std::min<blas_int>(kBlockK, k - t * kBlockK);
          const float* ap_panel =
              apack + (static_cast<std::size_t>(t) * ncomp + pi) * a_stride;
          const float* bp_panel =
              bpack + (static_cast<std::size_t>(t) * ncomp + pj) * b_stride;
          for (blas_int js = 0; js < n_strips; ++js) {
            const blas_int j0 = jc + js * nr;
            const int cols = static_cast<int>(std::min<blas_int>(nr, n - j0));
            for (blas_int is = 0; is < m_strips; ++is) {
              const blas_int i0 = ic + is * mr;
              const int rows =
                  static_cast<int>(std::min<blas_int>(mr, m - i0));
              std::fill_n(acc, mr * nr, 0.0f);
              call_micro_kernel(desc.fn, kc,
                                ap_panel + static_cast<std::size_t>(is) *
                                               (kc * mr),
                                bp_panel + static_cast<std::size_t>(js) *
                                               (kc * nr),
                                acc);
              accumulate_tile(m, n, alpha, acc, i0, j0, rows, cols, c, ldc,
                              nr);
            }
          }
        }
      }
      if (profile) {
        const double ta2 = engine_now();
        pack_a_ns.fetch_add(static_cast<std::int64_t>((ta1 - ta0) * 1e9),
                            std::memory_order_relaxed);
        compute_ns.fetch_add(static_cast<std::int64_t>((ta2 - ta1) * 1e9),
                             std::memory_order_relaxed);
      }
    };
    if (ic_blocks >= ic_dynamic_crossover(isa)) {
#if defined(DCMESH_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
      for (blas_int ib = 0; ib < ic_blocks; ++ib) process_block(ib);
    } else {
#if defined(DCMESH_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (blas_int ib = 0; ib < ic_blocks; ++ib) process_block(ib);
    }
  }

  if (profile) {
    split_profile_add(pack_a_ns.load(std::memory_order_relaxed) * 1e-9,
                      pack_b_seconds,
                      compute_ns.load(std::memory_order_relaxed) * 1e-9);
  }
}

void gemm_at_mode(compute_mode mode, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k, float alpha,
                  const float* a, blas_int lda, const float* b, blas_int ldb,
                  float beta, float* c, blas_int ldc) {
  if (is_split_mode(mode)) {
#if defined(DCMESH_HAVE_AVX512BF16_KERNELS)
    // Native vdpbf16ps engine for the bf16 family when the avx512 tier is
    // active on AVX512-BF16 silicon (ULP-equivalent to the software
    // engine; see split.hpp).  TF32 modes always use the software path.
    if (split_for(mode).kind == round_kind::bf16 && bf16_native_active()) {
      sgemm_split_bf16_native(mode, transa, transb, m, n, k, alpha, a, lda,
                              b, ldb, beta, c, ldc);
      return;
    }
#endif
    sgemm_split(mode, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                c, ldc);
  } else {
    // COMPLEX_3M has no effect on real GEMM; run standard arithmetic.
    gemm_blocked(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                 ldc);
  }
}

void gemm_at_mode(compute_mode /*mode*/, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k, double alpha,
                  const double* a, blas_int lda, const double* b,
                  blas_int ldb, double beta, double* c, blas_int ldc) {
  // Alternative compute modes apply to single precision only; dgemm always
  // runs standard FP64 arithmetic (paper Section IV-C: the FP64 SCF path
  // must stay exact).
  gemm_blocked(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
               ldc);
}

}  // namespace detail

void sgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, float alpha, const float* a, blas_int lda,
           const float* b, blas_int ldb, float beta, float* c, blas_int ldc) {
  run(gemm_call<float>{transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                       c, ldc});
}

void dgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, double alpha, const double* a, blas_int lda,
           const double* b, blas_int ldb, double beta, double* c,
           blas_int ldc) {
  run(gemm_call<double>{transa, transb, m, n, k, alpha, a, lda, b, ldb,
                        beta, c, ldc});
}

void set_num_threads(int threads) {
  detail::g_requested_threads = threads < 0 ? 0 : threads;
#if defined(DCMESH_HAVE_OPENMP)
  if (threads > 0) omp_set_num_threads(threads);
#endif
}

int get_num_threads() {
#if defined(DCMESH_HAVE_OPENMP)
  if (detail::g_requested_threads > 0) return detail::g_requested_threads;
  // Honour MKL_NUM_THREADS like oneMKL (environment wins over the OpenMP
  // default, loses to an explicit set_num_threads call).
  const long env = env_get_int("MKL_NUM_THREADS", 0);
  if (env > 0) return static_cast<int>(env);
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace dcmesh::blas
