#include "dcmesh/blas/level1.hpp"

#include <cmath>
#include <stdexcept>

namespace dcmesh::blas {
namespace {

void check_inc(blas_int inc) {
  if (inc == 0) throw std::invalid_argument("level1: zero increment");
}

/// |x| for real, |re| + |im| for complex (reference-BLAS asum convention).
template <typename T>
double abs1(const T& v) {
  if constexpr (std::is_floating_point_v<T>) {
    return std::abs(static_cast<double>(v));
  } else {
    return std::abs(static_cast<double>(v.real())) +
           std::abs(static_cast<double>(v.imag()));
  }
}

}  // namespace

template <typename T>
void axpy(blas_int n, T alpha, const T* x, blas_int incx, T* y,
          blas_int incy) {
  if (n <= 0 || alpha == T(0)) return;
  check_inc(incx);
  check_inc(incy);
  if (incx == 1 && incy == 1) {
    for (blas_int i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  blas_int ix = incx > 0 ? 0 : (1 - n) * incx;
  blas_int iy = incy > 0 ? 0 : (1 - n) * incy;
  for (blas_int i = 0; i < n; ++i, ix += incx, iy += incy) {
    y[iy] += alpha * x[ix];
  }
}

template <typename T>
void scal(blas_int n, T alpha, T* x, blas_int incx) {
  if (n <= 0) return;
  check_inc(incx);
  if (incx < 0) return;  // reference BLAS: no-op for negative incx
  for (blas_int i = 0, ix = 0; i < n; ++i, ix += incx) x[ix] *= alpha;
}

template <typename R>
void scal_real(blas_int n, R alpha, std::complex<R>* x, blas_int incx) {
  if (n <= 0) return;
  check_inc(incx);
  if (incx < 0) return;
  for (blas_int i = 0, ix = 0; i < n; ++i, ix += incx) x[ix] *= alpha;
}

template <typename T>
void copy(blas_int n, const T* x, blas_int incx, T* y, blas_int incy) {
  if (n <= 0) return;
  check_inc(incx);
  check_inc(incy);
  blas_int ix = incx > 0 ? 0 : (1 - n) * incx;
  blas_int iy = incy > 0 ? 0 : (1 - n) * incy;
  for (blas_int i = 0; i < n; ++i, ix += incx, iy += incy) y[iy] = x[ix];
}

template <typename T>
double nrm2(blas_int n, const T* x, blas_int incx) {
  if (n <= 0) return 0.0;
  check_inc(incx);
  if (incx < 0) return 0.0;
  // Scaled accumulation avoids overflow/underflow of the squares.
  double scale = 0.0, ssq = 1.0;
  for (blas_int i = 0, ix = 0; i < n; ++i, ix += incx) {
    const auto accumulate = [&](double v) {
      if (v == 0.0) return;
      const double av = std::abs(v);
      if (scale < av) {
        ssq = 1.0 + ssq * (scale / av) * (scale / av);
        scale = av;
      } else {
        ssq += (av / scale) * (av / scale);
      }
    };
    if constexpr (std::is_floating_point_v<T>) {
      accumulate(static_cast<double>(x[ix]));
    } else {
      accumulate(static_cast<double>(x[ix].real()));
      accumulate(static_cast<double>(x[ix].imag()));
    }
  }
  return scale * std::sqrt(ssq);
}

template <typename T>
T dotu(blas_int n, const T* x, blas_int incx, const T* y, blas_int incy) {
  T sum{};
  if (n <= 0) return sum;
  check_inc(incx);
  check_inc(incy);
  blas_int ix = incx > 0 ? 0 : (1 - n) * incx;
  blas_int iy = incy > 0 ? 0 : (1 - n) * incy;
  for (blas_int i = 0; i < n; ++i, ix += incx, iy += incy) {
    sum += x[ix] * y[iy];
  }
  return sum;
}

template <typename T>
T dotc(blas_int n, const T* x, blas_int incx, const T* y, blas_int incy) {
  T sum{};
  if (n <= 0) return sum;
  check_inc(incx);
  check_inc(incy);
  blas_int ix = incx > 0 ? 0 : (1 - n) * incx;
  blas_int iy = incy > 0 ? 0 : (1 - n) * incy;
  for (blas_int i = 0; i < n; ++i, ix += incx, iy += incy) {
    if constexpr (std::is_floating_point_v<T>) {
      sum += x[ix] * y[iy];
    } else {
      sum += std::conj(x[ix]) * y[iy];
    }
  }
  return sum;
}

template <typename T>
double asum(blas_int n, const T* x, blas_int incx) {
  if (n <= 0) return 0.0;
  check_inc(incx);
  if (incx < 0) return 0.0;
  double sum = 0.0;
  for (blas_int i = 0, ix = 0; i < n; ++i, ix += incx) sum += abs1(x[ix]);
  return sum;
}

template <typename T>
blas_int iamax(blas_int n, const T* x, blas_int incx) {
  if (n <= 0) return -1;
  check_inc(incx);
  if (incx < 0) return -1;
  blas_int best = 0;
  double best_val = abs1(x[0]);
  for (blas_int i = 1, ix = incx; i < n; ++i, ix += incx) {
    const double v = abs1(x[ix]);
    if (v > best_val) {
      best_val = v;
      best = i;
    }
  }
  return best;
}

// Explicit instantiations for the four standard precisions.
#define DCMESH_INSTANTIATE_LEVEL1(T)                                        \
  template void axpy<T>(blas_int, T, const T*, blas_int, T*, blas_int);     \
  template void scal<T>(blas_int, T, T*, blas_int);                         \
  template void copy<T>(blas_int, const T*, blas_int, T*, blas_int);        \
  template double nrm2<T>(blas_int, const T*, blas_int);                    \
  template T dotu<T>(blas_int, const T*, blas_int, const T*, blas_int);     \
  template T dotc<T>(blas_int, const T*, blas_int, const T*, blas_int);     \
  template double asum<T>(blas_int, const T*, blas_int);                    \
  template blas_int iamax<T>(blas_int, const T*, blas_int);

DCMESH_INSTANTIATE_LEVEL1(float)
DCMESH_INSTANTIATE_LEVEL1(double)
DCMESH_INSTANTIATE_LEVEL1(std::complex<float>)
DCMESH_INSTANTIATE_LEVEL1(std::complex<double>)
#undef DCMESH_INSTANTIATE_LEVEL1

template void scal_real<float>(blas_int, float, std::complex<float>*,
                               blas_int);
template void scal_real<double>(blas_int, double, std::complex<double>*,
                                blas_int);

}  // namespace dcmesh::blas
