#include "dcmesh/blas/compute_mode.hpp"

#include <mutex>

#include "dcmesh/common/env.hpp"

namespace dcmesh::blas {
namespace {

// Programmatic override shared across threads (like mkl_set_* APIs), plus a
// thread-local scoped override used by scoped_compute_mode.
std::mutex g_mode_mutex;
std::optional<compute_mode> g_api_mode;        // guarded by g_mode_mutex
thread_local std::optional<compute_mode> t_scoped_mode;

constexpr std::array<compute_mode_info, kNumComputeModes> kRegistry = {{
    {compute_mode::standard, "FP32", "STANDARD", 1, 1.0, 23},
    {compute_mode::float_to_bf16, "BF16", "FLOAT_TO_BF16", 1, 16.0, 7},
    {compute_mode::float_to_bf16x2, "BF16x2", "FLOAT_TO_BF16X2", 3,
     16.0 / 3.0, 7},
    {compute_mode::float_to_bf16x3, "BF16x3", "FLOAT_TO_BF16X3", 6, 8.0 / 3.0,
     7},
    {compute_mode::float_to_tf32, "TF32", "FLOAT_TO_TF32", 1, 8.0, 10},
    {compute_mode::complex_3m, "Complex_3m", "COMPLEX_3M", 1, 4.0 / 3.0, 23},
}};

}  // namespace

const std::array<compute_mode_info, kNumComputeModes>&
compute_mode_registry() noexcept {
  return kRegistry;
}

const compute_mode_info& info(compute_mode mode) noexcept {
  for (const auto& entry : kRegistry) {
    if (entry.mode == mode) return entry;
  }
  return kRegistry[0];
}

std::string_view name(compute_mode mode) noexcept { return info(mode).name; }

std::optional<compute_mode> parse_compute_mode(
    std::string_view token) noexcept {
  const std::string normalized = to_upper(trim(token));
  for (const auto& entry : kRegistry) {
    if (normalized == entry.env_token) return entry.mode;
  }
  return std::nullopt;
}

std::optional<compute_mode> scoped_mode_override() noexcept {
  return t_scoped_mode;
}

std::optional<compute_mode> api_mode_override() {
  std::lock_guard lock(g_mode_mutex);
  return g_api_mode;
}

std::optional<compute_mode> env_mode_override() {
  if (const auto env = env_get(kComputeModeEnvVar)) {
    if (const auto parsed = parse_compute_mode(*env)) return parsed;
  }
  return std::nullopt;
}

compute_mode active_compute_mode() {
  if (const auto scoped = scoped_mode_override()) return *scoped;
  if (const auto api = api_mode_override()) return *api;
  if (const auto env = env_mode_override()) return *env;
  return compute_mode::standard;
}

void set_compute_mode(compute_mode mode) {
  std::lock_guard lock(g_mode_mutex);
  g_api_mode = mode;
}

void clear_compute_mode() {
  std::lock_guard lock(g_mode_mutex);
  g_api_mode.reset();
}

scoped_compute_mode::scoped_compute_mode(compute_mode mode)
    : had_previous_(t_scoped_mode.has_value()),
      previous_(t_scoped_mode.value_or(compute_mode::standard)) {
  t_scoped_mode = mode;
}

scoped_compute_mode::~scoped_compute_mode() {
  if (had_previous_) {
    t_scoped_mode = previous_;
  } else {
    t_scoped_mode.reset();
  }
}

}  // namespace dcmesh::blas
