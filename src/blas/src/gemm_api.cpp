// gemm_api.cpp — view-based convenience overload: shape-checks the views,
// fills a gemm_call<T> descriptor, and dispatches through run().

#include <stdexcept>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_call.hpp"

namespace dcmesh::blas {

template <typename T>
void gemm(transpose transa, transpose transb, T alpha, const_matrix_view<T> a,
          const_matrix_view<T> b, T beta, matrix_view<T> c,
          std::string_view call_site) {
  const blas_int m =
      static_cast<blas_int>(transa == transpose::none ? a.rows : a.cols);
  const blas_int k =
      static_cast<blas_int>(transa == transpose::none ? a.cols : a.rows);
  const blas_int n =
      static_cast<blas_int>(transb == transpose::none ? b.cols : b.rows);
  const blas_int kb =
      static_cast<blas_int>(transb == transpose::none ? b.rows : b.cols);
  if (k != kb) throw std::invalid_argument("gemm: inner dimensions differ");
  if (static_cast<blas_int>(c.rows) != m ||
      static_cast<blas_int>(c.cols) != n) {
    throw std::invalid_argument("gemm: C shape mismatch");
  }
  gemm_call<T> call;
  call.transa = transa;
  call.transb = transb;
  call.m = m;
  call.n = n;
  call.k = k;
  call.alpha = alpha;
  call.a = a.data;
  call.lda = static_cast<blas_int>(a.ld);
  call.b = b.data;
  call.ldb = static_cast<blas_int>(b.ld);
  call.beta = beta;
  call.c = c.data;
  call.ldc = static_cast<blas_int>(c.ld);
  call.call_site = call_site;
  run(call);
}

template void gemm<float>(transpose, transpose, float,
                          const_matrix_view<float>, const_matrix_view<float>,
                          float, matrix_view<float>, std::string_view);
template void gemm<double>(transpose, transpose, double,
                           const_matrix_view<double>,
                           const_matrix_view<double>, double,
                           matrix_view<double>, std::string_view);
template void gemm<std::complex<float>>(transpose, transpose,
                                        std::complex<float>,
                                        const_matrix_view<std::complex<float>>,
                                        const_matrix_view<std::complex<float>>,
                                        std::complex<float>,
                                        matrix_view<std::complex<float>>,
                                        std::string_view);
template void gemm<std::complex<double>>(
    transpose, transpose, std::complex<double>,
    const_matrix_view<std::complex<double>>,
    const_matrix_view<std::complex<double>>, std::complex<double>,
    matrix_view<std::complex<double>>, std::string_view);

}  // namespace dcmesh::blas
