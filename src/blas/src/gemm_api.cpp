// gemm_api.cpp — view-based convenience overload dispatching to the typed
// entry points.

#include <stdexcept>

#include "dcmesh/blas/blas.hpp"

namespace dcmesh::blas {

template <typename T>
void gemm(transpose transa, transpose transb, T alpha, const_matrix_view<T> a,
          const_matrix_view<T> b, T beta, matrix_view<T> c) {
  const blas_int m =
      static_cast<blas_int>(transa == transpose::none ? a.rows : a.cols);
  const blas_int k =
      static_cast<blas_int>(transa == transpose::none ? a.cols : a.rows);
  const blas_int n =
      static_cast<blas_int>(transb == transpose::none ? b.cols : b.rows);
  const blas_int kb =
      static_cast<blas_int>(transb == transpose::none ? b.rows : b.cols);
  if (k != kb) throw std::invalid_argument("gemm: inner dimensions differ");
  if (static_cast<blas_int>(c.rows) != m ||
      static_cast<blas_int>(c.cols) != n) {
    throw std::invalid_argument("gemm: C shape mismatch");
  }
  if constexpr (std::is_same_v<T, float>) {
    sgemm(transa, transb, m, n, k, alpha, a.data,
          static_cast<blas_int>(a.ld), b.data, static_cast<blas_int>(b.ld),
          beta, c.data, static_cast<blas_int>(c.ld));
  } else if constexpr (std::is_same_v<T, double>) {
    dgemm(transa, transb, m, n, k, alpha, a.data,
          static_cast<blas_int>(a.ld), b.data, static_cast<blas_int>(b.ld),
          beta, c.data, static_cast<blas_int>(c.ld));
  } else if constexpr (std::is_same_v<T, std::complex<float>>) {
    cgemm(transa, transb, m, n, k, alpha, a.data,
          static_cast<blas_int>(a.ld), b.data, static_cast<blas_int>(b.ld),
          beta, c.data, static_cast<blas_int>(c.ld));
  } else {
    zgemm(transa, transb, m, n, k, alpha, a.data,
          static_cast<blas_int>(a.ld), b.data, static_cast<blas_int>(b.ld),
          beta, c.data, static_cast<blas_int>(c.ld));
  }
}

template void gemm<float>(transpose, transpose, float,
                          const_matrix_view<float>, const_matrix_view<float>,
                          float, matrix_view<float>);
template void gemm<double>(transpose, transpose, double,
                           const_matrix_view<double>,
                           const_matrix_view<double>, double,
                           matrix_view<double>);
template void gemm<std::complex<float>>(transpose, transpose,
                                        std::complex<float>,
                                        const_matrix_view<std::complex<float>>,
                                        const_matrix_view<std::complex<float>>,
                                        std::complex<float>,
                                        matrix_view<std::complex<float>>);
template void gemm<std::complex<double>>(
    transpose, transpose, std::complex<double>,
    const_matrix_view<std::complex<double>>,
    const_matrix_view<std::complex<double>>, std::complex<double>,
    matrix_view<std::complex<double>>);

}  // namespace dcmesh::blas
