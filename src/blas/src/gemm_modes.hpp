#pragma once
// gemm_modes.hpp — internal per-type "execute at mode M" entry points.
//
// The public dispatcher (gemm_dispatch.cpp) resolves the effective compute
// mode per call site, then hands the arithmetic to one of these.  Each
// overload validates the argument contract and maps the mode onto what the
// element type supports (FP32 split modes for float paths, COMPLEX_3M for
// complex paths, always-standard for real double), so the dispatcher can
// re-run the same call at a different mode without re-deriving any of
// that — the mechanism behind the accuracy-guarded fallback.

#include <complex>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"

namespace dcmesh::blas::detail {

/// sgemm arithmetic at `mode` (split modes honoured; others standard).
void gemm_at_mode(compute_mode mode, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k, float alpha,
                  const float* a, blas_int lda, const float* b, blas_int ldb,
                  float beta, float* c, blas_int ldc);

/// dgemm arithmetic: always standard FP64 (mode ignored by design).
void gemm_at_mode(compute_mode mode, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k, double alpha,
                  const double* a, blas_int lda, const double* b,
                  blas_int ldb, double beta, double* c, blas_int ldc);

/// cgemm arithmetic at `mode` (COMPLEX_3M and FP32 split modes honoured).
void gemm_at_mode(compute_mode mode, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k,
                  std::complex<float> alpha, const std::complex<float>* a,
                  blas_int lda, const std::complex<float>* b, blas_int ldb,
                  std::complex<float> beta, std::complex<float>* c,
                  blas_int ldc);

/// zgemm arithmetic at `mode` (COMPLEX_3M honoured; splits do not apply).
void gemm_at_mode(compute_mode mode, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k,
                  std::complex<double> alpha, const std::complex<double>* a,
                  blas_int lda, const std::complex<double>* b, blas_int ldb,
                  std::complex<double> beta, std::complex<double>* c,
                  blas_int ldc);

}  // namespace dcmesh::blas::detail
