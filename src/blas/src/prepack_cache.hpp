#pragma once
// prepack_cache.hpp — internal registry of B operands packed ahead of time.
//
// The step scheduler overlaps pack_b of call k+1 with compute of call k:
// a graph node calls blas::prepack_b() on an operand whose bytes are
// already final (remap_occ's psi0_unocc block is frozen all step), the
// panels land here, and the next gemm_blocked_accumulate whose (pointer,
// ldb, op, k, n, type) matches consumes them instead of packing inline.
//
// Entries are one-shot: take_prepacked() removes the entry, so a repeated
// call (accuracy-guard promotion re-run, fault-injection replay) packs
// inline again from the live operand — identical bytes, because pack_b is
// deterministic and the operand is frozen.  The engine clears the cache at
// step end; a missed consume is a small memory waste, never a wrong
// answer.
//
// Panel layout is EXACTLY gemm_blocked_accumulate's arena layout — for
// each (jc, pc) cache block, n_strips NR-wide strips of kc elements,
// zero-padded — so consuming a prepacked panel changes which buffer the
// microkernel reads, not a single byte of what it reads.

#include <atomic>
#include <complex>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "dcmesh/blas/blas.hpp"

namespace dcmesh::blas::detail {

/// Distinguishes the four element types in the registry key.
template <typename T>
constexpr int prepack_type_tag() noexcept {
  if constexpr (std::is_same_v<T, float>) return 0;
  else if constexpr (std::is_same_v<T, double>) return 1;
  else if constexpr (std::is_same_v<T, std::complex<float>>) return 2;
  else return 3;
}

/// Packed panels of one B operand, laid out per (jc, pc) cache block.
/// block_n/block_k/nr record the layout the panels were packed for; the
/// consumer compares them against its own resolved blocking + tile and
/// drops the entry on mismatch (tier or tuned blocking changed between
/// prepack and consume) instead of misreading it.
struct prepacked_b_panels {
  blas_int pc_blocks = 0;           ///< K-dimension block count.
  blas_int block_n = 0;              ///< NC the panels were laid out for.
  blas_int block_k = 0;              ///< KC ditto (always kBlockK today).
  int nr = 0;                        ///< strip width packed for
  std::vector<std::size_t> offsets;  ///< [jc_idx * pc_blocks + pc_idx]
  std::shared_ptr<void> storage;     ///< element array, element type T
  const void* base = nullptr;        ///< == storage.get()

  template <typename T>
  [[nodiscard]] const T* panel(blas_int jc_idx, blas_int pc_idx) const {
    return static_cast<const T*>(base) +
           offsets[static_cast<std::size_t>(jc_idx) * pc_blocks + pc_idx];
  }
};

/// True when no prepacked entry exists (one relaxed load — the fast path
/// for the overwhelmingly common non-prepacked GEMM).
[[nodiscard]] bool prepack_cache_empty() noexcept;

/// Remove and return the entry matching this exact call signature, or
/// nullptr.  `op` is the transpose enum value, `tag` prepack_type_tag<T>.
[[nodiscard]] std::shared_ptr<const prepacked_b_panels> take_prepacked(
    const void* b, blas_int ldb, int op, blas_int k, blas_int n, int tag);

/// Insert (replacing any same-key entry).
void publish_prepacked(const void* b, blas_int ldb, int op, blas_int k,
                       blas_int n, int tag,
                       std::shared_ptr<const prepacked_b_panels> panels);

}  // namespace dcmesh::blas::detail
