#include "kernel_isa.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <string>

#include "dcmesh/common/env.hpp"
#include "microkernel.hpp"

namespace dcmesh::blas::detail {
namespace {

// Cached resolution: -1 = unresolved, otherwise a kernel_isa value.
std::atomic<int> g_resolved{-1};
// In-process override: -1 = none.
std::atomic<int> g_override{-1};

void warn_once(const char* format, const char* arg) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) std::fprintf(stderr, format, arg);
}

[[nodiscard]] bool cpu_has_avx2_fma() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

[[nodiscard]] kernel_isa resolve_from_env() noexcept {
  const std::string raw = env_get(kKernelIsaEnvVar).value_or("auto");
  std::string token;
  token.reserve(raw.size());
  for (const char ch : raw) {
    token.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  }
  if (token == "scalar") return kernel_isa::scalar;
  if (token == "avx2") {
    if (avx2_kernels_available()) return kernel_isa::avx2;
    warn_once(
        "dcmesh: DCMESH_KERNEL_ISA=avx2 requested but this build/CPU has "
        "no AVX2+FMA kernels%s; falling back to scalar\n",
        "");
    return kernel_isa::scalar;
  }
  if (token != "auto" && !token.empty()) {
    warn_once(
        "dcmesh: unrecognised DCMESH_KERNEL_ISA value \"%s\" (expected "
        "auto|avx2|scalar); using auto\n",
        raw.c_str());
  }
#if defined(__AVX2__) && defined(__FMA__)
  // The baseline build (e.g. -march=native) already vectorises the scalar
  // template at AVX2 width or wider (AVX-512 on capable hosts), where it
  // inlines into the blocked loop and beats the standalone YMM kernels.
  // "auto" therefore prefers the scalar path; DCMESH_KERNEL_ISA=avx2
  // still forces the explicit kernels.
  return kernel_isa::scalar;
#else
  return avx2_kernels_available() ? kernel_isa::avx2 : kernel_isa::scalar;
#endif
}

}  // namespace

bool avx2_kernels_available() noexcept {
#if defined(DCMESH_HAVE_AVX2_KERNELS)
  static const bool available = cpu_has_avx2_fma();
  return available;
#else
  return false;
#endif
}

kernel_isa active_kernel_isa() noexcept {
  const int forced = g_override.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<kernel_isa>(forced);
  int cached = g_resolved.load(std::memory_order_acquire);
  if (cached < 0) {
    cached = static_cast<int>(resolve_from_env());
    g_resolved.store(cached, std::memory_order_release);
  }
  return static_cast<kernel_isa>(cached);
}

void set_kernel_isa(std::optional<kernel_isa> isa) noexcept {
  if (!isa.has_value()) {
    g_override.store(-1, std::memory_order_release);
    g_resolved.store(-1, std::memory_order_release);  // re-read the env
    return;
  }
  kernel_isa want = *isa;
  if (want == kernel_isa::avx2 && !avx2_kernels_available()) {
    warn_once(
        "dcmesh: set_kernel_isa(avx2) on a build/CPU without AVX2+FMA "
        "kernels%s; using scalar\n",
        "");
    want = kernel_isa::scalar;
  }
  g_override.store(static_cast<int>(want), std::memory_order_release);
}

std::string_view kernel_isa_name(kernel_isa isa) noexcept {
  return isa == kernel_isa::avx2 ? "avx2" : "scalar";
}

micro_kernel_fn<float> resolve_micro_kernel_f32() noexcept {
#if defined(DCMESH_HAVE_AVX2_KERNELS)
  if (active_kernel_isa() == kernel_isa::avx2) {
    return &micro_kernel_avx2_f32;
  }
#endif
  return &micro_kernel_scalar<float>;
}

micro_kernel_fn<double> resolve_micro_kernel_f64() noexcept {
#if defined(DCMESH_HAVE_AVX2_KERNELS)
  if (active_kernel_isa() == kernel_isa::avx2) {
    return &micro_kernel_avx2_f64;
  }
#endif
  return &micro_kernel_scalar<double>;
}

}  // namespace dcmesh::blas::detail
