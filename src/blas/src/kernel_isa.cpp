#include "kernel_isa.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <string>

#include "dcmesh/common/env.hpp"
#include "microkernel.hpp"

namespace dcmesh::blas::detail {
namespace {

// Cached resolution: -1 = unresolved, otherwise a kernel_isa value.
std::atomic<int> g_resolved{-1};
// In-process override: -1 = none.
std::atomic<int> g_override{-1};
// Native BF16 engine: env resolution (-1 unresolved, 0 off, 1 on) and
// in-process override (-1 none).
std::atomic<int> g_bf16_env{-1};
std::atomic<int> g_bf16_override{-1};

void warn_once(const char* format, const char* arg) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) std::fprintf(stderr, format, arg);
}

[[nodiscard]] bool cpu_has_avx2_fma() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

[[nodiscard]] bool cpu_has_avx512() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

[[nodiscard]] bool cpu_has_avx512bf16() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return cpu_has_avx512() && __builtin_cpu_supports("avx512bf16");
#else
  return false;
#endif
}

[[nodiscard]] std::string lowercase_env(std::string_view var) {
  const std::string raw = env_get(var).value_or("");
  std::string token;
  token.reserve(raw.size());
  for (const char ch : raw) {
    token.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
  }
  return token;
}

/// Best tier the build/CPU can honour, starting from `want` and walking
/// down the ladder.  Never warns — callers decide whether the downgrade
/// deserves one.
[[nodiscard]] kernel_isa clamp_to_available(kernel_isa want) noexcept {
  if (want == kernel_isa::avx512 && !avx512_kernels_available()) {
    want = kernel_isa::avx2;
  }
  if (want == kernel_isa::avx2 && !avx2_kernels_available()) {
    want = kernel_isa::scalar;
  }
  return want;
}

[[nodiscard]] kernel_isa resolve_from_env() noexcept {
  const std::string raw = env_get(kKernelIsaEnvVar).value_or("auto");
  const std::string token = lowercase_env(kKernelIsaEnvVar);
  if (token == "scalar") return kernel_isa::scalar;
  if (token == "avx2" || token == "avx512") {
    const kernel_isa want =
        token == "avx512" ? kernel_isa::avx512 : kernel_isa::avx2;
    const kernel_isa got = clamp_to_available(want);
    if (got != want) {
      warn_once(
          "dcmesh: DCMESH_KERNEL_ISA=%s requested but this build/CPU "
          "cannot honour it; falling back down the tier ladder\n",
          raw.c_str());
    }
    return got;
  }
  if (token != "auto" && !token.empty()) {
    warn_once(
        "dcmesh: unrecognised DCMESH_KERNEL_ISA value \"%s\" (expected "
        "auto|avx512|avx2|scalar); using auto\n",
        raw.c_str());
  }
#if defined(__AVX512F__)
  // The baseline build (e.g. -march=native on an AVX-512 host) already
  // vectorises the scalar template at ZMM width, where it inlines into
  // the blocked loop and beats the standalone kernels dispatched through
  // a pointer.  "auto" therefore prefers the scalar path;
  // DCMESH_KERNEL_ISA=avx512 still forces the explicit kernels.
  return kernel_isa::scalar;
#else
  // Baseline codegen is narrower than 512 bits: the explicit ZMM kernels
  // are an upgrade wherever the build/CPU carry them.
  if (avx512_kernels_available()) return kernel_isa::avx512;
#if defined(__AVX2__) && defined(__FMA__)
  // Baseline already vectorises at AVX2 width; the YMM kernels would be
  // a wash at best, so keep the inlined scalar template.
  return kernel_isa::scalar;
#else
  return avx2_kernels_available() ? kernel_isa::avx2 : kernel_isa::scalar;
#endif
#endif
}

/// DCMESH_BF16_NATIVE: default (auto) is ON wherever the avx512 tier +
/// silicon can honour it; only an explicit off token vetoes.
[[nodiscard]] int resolve_bf16_env() noexcept {
  const std::string token = lowercase_env(kBf16NativeEnvVar);
  if (token == "0" || token == "off" || token == "false" || token == "no") {
    return 0;
  }
  if (!token.empty() && token != "1" && token != "on" && token != "true" &&
      token != "yes" && token != "auto") {
    warn_once(
        "dcmesh: unrecognised DCMESH_BF16_NATIVE value \"%s\" (expected "
        "auto|0|1); using auto\n",
        token.c_str());
  }
  return 1;
}

}  // namespace

bool avx2_kernels_available() noexcept {
#if defined(DCMESH_HAVE_AVX2_KERNELS)
  static const bool available = cpu_has_avx2_fma();
  return available;
#else
  return false;
#endif
}

bool avx512_kernels_available() noexcept {
#if defined(DCMESH_HAVE_AVX512_KERNELS)
  static const bool available = cpu_has_avx512();
  return available;
#else
  return false;
#endif
}

bool avx512bf16_kernels_available() noexcept {
#if defined(DCMESH_HAVE_AVX512BF16_KERNELS)
  static const bool available = cpu_has_avx512bf16();
  return available;
#else
  return false;
#endif
}

kernel_isa active_kernel_isa() noexcept {
  const int forced = g_override.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<kernel_isa>(forced);
  int cached = g_resolved.load(std::memory_order_acquire);
  if (cached < 0) {
    cached = static_cast<int>(resolve_from_env());
    g_resolved.store(cached, std::memory_order_release);
  }
  return static_cast<kernel_isa>(cached);
}

void set_kernel_isa(std::optional<kernel_isa> isa) noexcept {
  if (!isa.has_value()) {
    g_override.store(-1, std::memory_order_release);
    g_resolved.store(-1, std::memory_order_release);  // re-read the env
    return;
  }
  const kernel_isa want = *isa;
  const kernel_isa got = clamp_to_available(want);
  if (got != want) {
    warn_once(
        "dcmesh: set_kernel_isa(%s) on a build/CPU that cannot honour "
        "it; falling back down the tier ladder\n",
        kernel_isa_name(want).data());
  }
  g_override.store(static_cast<int>(got), std::memory_order_release);
}

bool bf16_native_active() noexcept {
  if (active_kernel_isa() != kernel_isa::avx512) return false;
  if (!avx512bf16_kernels_available()) return false;
  const int forced = g_bf16_override.load(std::memory_order_acquire);
  if (forced >= 0) return forced != 0;
  int cached = g_bf16_env.load(std::memory_order_acquire);
  if (cached < 0) {
    cached = resolve_bf16_env();
    g_bf16_env.store(cached, std::memory_order_release);
  }
  return cached != 0;
}

void set_bf16_native(std::optional<bool> enabled) noexcept {
  if (!enabled.has_value()) {
    g_bf16_override.store(-1, std::memory_order_release);
    g_bf16_env.store(-1, std::memory_order_release);  // re-read the env
    return;
  }
  if (*enabled && !avx512bf16_kernels_available()) {
    warn_once(
        "dcmesh: set_bf16_native(true) on a build/CPU without "
        "AVX512-BF16%s; the software split engine stays active\n",
        "");
  }
  g_bf16_override.store(*enabled ? 1 : 0, std::memory_order_release);
}

std::string_view kernel_isa_name(kernel_isa isa) noexcept {
  switch (isa) {
    case kernel_isa::avx512: return "avx512";
    case kernel_isa::avx2: return "avx2";
    default: return "scalar";
  }
}

kernel_desc<float> resolve_kernel_desc_f32() noexcept {
  switch (active_kernel_isa()) {
#if defined(DCMESH_HAVE_AVX512_KERNELS)
    case kernel_isa::avx512:
      return {&micro_kernel_avx512_f32, 14, 32};
#endif
#if defined(DCMESH_HAVE_AVX2_KERNELS)
    case kernel_isa::avx2:
      return {&micro_kernel_avx2_f32, micro_tile<float>::mr,
              micro_tile<float>::nr};
#endif
    default:
      return {&micro_kernel_scalar<float>, micro_tile<float>::mr,
              micro_tile<float>::nr};
  }
}

kernel_desc<double> resolve_kernel_desc_f64() noexcept {
  switch (active_kernel_isa()) {
#if defined(DCMESH_HAVE_AVX512_KERNELS)
    case kernel_isa::avx512:
      return {&micro_kernel_avx512_f64, 8, 16};
#endif
#if defined(DCMESH_HAVE_AVX2_KERNELS)
    case kernel_isa::avx2:
      return {&micro_kernel_avx2_f64, micro_tile<double>::mr,
              micro_tile<double>::nr};
#endif
    default:
      return {&micro_kernel_scalar<double>, micro_tile<double>::mr,
              micro_tile<double>::nr};
  }
}

}  // namespace dcmesh::blas::detail
