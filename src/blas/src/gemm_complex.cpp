// gemm_complex.cpp — cgemm/zgemm entry points: standard complex arithmetic,
// 3M complex multiplication, and FP32 split modes applied to the real
// component products (the hardware path XMX takes for complex data).

#include <complex>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_call.hpp"
#include "gemm_kernel.hpp"
#include "gemm_modes.hpp"
#include "split.hpp"

namespace dcmesh::blas {
namespace detail {
namespace {

/// Real-arithmetic transpose op corresponding to a complex op once
/// conjugation has been folded into the extracted imaginary plane.
constexpr transpose real_op(transpose op) noexcept {
  return op == transpose::none ? transpose::none : transpose::trans;
}

/// Extract the real and imaginary planes of a stored complex operand.
/// `negate_imag` folds a conjugate-transpose into the extraction.
template <typename R>
std::pair<matrix<R>, matrix<R>> extract_planes(const std::complex<R>* x,
                                               blas_int rows, blas_int cols,
                                               blas_int ld, bool negate_imag) {
  matrix<R> re(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  matrix<R> im(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (blas_int j = 0; j < cols; ++j) {
    const std::complex<R>* src = x + j * ld;
    R* re_col = re.data() + j * rows;
    R* im_col = im.data() + j * rows;
    if (negate_imag) {
      for (blas_int i = 0; i < rows; ++i) {
        re_col[i] = src[i].real();
        im_col[i] = -src[i].imag();
      }
    } else {
      for (blas_int i = 0; i < rows; ++i) {
        re_col[i] = src[i].real();
        im_col[i] = src[i].imag();
      }
    }
  }
  return {std::move(re), std::move(im)};
}

/// C <- alpha*(Pr + i*Pi) + beta*C element-wise (the final complex
/// combination after plane products; alpha/beta applied at full precision,
/// matching MKL's FP32 epilogue).
template <typename R>
void combine_planes(blas_int m, blas_int n, std::complex<R> alpha,
                    const matrix<R>& pr, const matrix<R>& pi,
                    std::complex<R> beta, std::complex<R>* c, blas_int ldc) {
  const std::size_t rows = static_cast<std::size_t>(m);
  for (blas_int j = 0; j < n; ++j) {
    const R* pr_col = pr.data() + static_cast<std::size_t>(j) * rows;
    const R* pi_col = pi.data() + static_cast<std::size_t>(j) * rows;
    std::complex<R>* c_col = c + j * ldc;
    for (blas_int i = 0; i < m; ++i) {
      const std::complex<R> product{pr_col[i], pi_col[i]};
      c_col[i] = beta == std::complex<R>(0)
                     ? alpha * product
                     : alpha * product + beta * c_col[i];
    }
  }
}

/// Real GEMM that honours a split mode for float (standard otherwise;
/// double precision never splits).  Split modes route to the fused
/// pack-once engine; its arena slots are released between the sequential
/// plane products, so nesting 4M over sgemm_split is allocation-safe
/// (see pack_arena.hpp lifetime rules).
template <typename R>
void real_gemm_mode(compute_mode mode, transpose ta, transpose tb,
                    blas_int m, blas_int n, blas_int k, R alpha, const R* a,
                    blas_int lda, const R* b, blas_int ldb, R beta, R* c,
                    blas_int ldc) {
  if constexpr (std::is_same_v<R, float>) {
    if (is_split_mode(mode)) {
      sgemm_split(mode, ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                  ldc);
      return;
    }
  }
  (void)mode;
  gemm_blocked(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

/// 4M complex GEMM over extracted planes: the standard complex algorithm
/// expressed as four real products (real-plane GEMMs vectorize far better
/// than a complex microkernel, and this is also how the XMX hardware path
/// consumes complex data).  Split modes apply to the component products.
template <typename R>
void gemm_4m(compute_mode mode, transpose transa, transpose transb,
             blas_int m, blas_int n, blas_int k, std::complex<R> alpha,
             const std::complex<R>* a, blas_int lda,
             const std::complex<R>* b, blas_int ldb, std::complex<R> beta,
             std::complex<R>* c, blas_int ldc) {
  const blas_int rows_a = transa == transpose::none ? m : k;
  const blas_int cols_a = transa == transpose::none ? k : m;
  const blas_int rows_b = transb == transpose::none ? k : n;
  const blas_int cols_b = transb == transpose::none ? n : k;

  auto [ar, ai] = extract_planes(a, rows_a, cols_a, lda,
                                 transa == transpose::conj_trans);
  auto [br, bi] = extract_planes(b, rows_b, cols_b, ldb,
                                 transb == transpose::conj_trans);
  const transpose ta = real_op(transa);
  const transpose tb = real_op(transb);

  matrix<R> pr(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  matrix<R> pi(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  // Pr = Ar*Br - Ai*Bi ; Pi = Ar*Bi + Ai*Br
  real_gemm_mode<R>(mode, ta, tb, m, n, k, R(1), ar.data(), rows_a,
                    br.data(), rows_b, R(0), pr.data(), m);
  real_gemm_mode<R>(mode, ta, tb, m, n, k, R(-1), ai.data(), rows_a,
                    bi.data(), rows_b, R(1), pr.data(), m);
  real_gemm_mode<R>(mode, ta, tb, m, n, k, R(1), ar.data(), rows_a,
                    bi.data(), rows_b, R(0), pi.data(), m);
  real_gemm_mode<R>(mode, ta, tb, m, n, k, R(1), ai.data(), rows_a,
                    br.data(), rows_b, R(1), pi.data(), m);

  combine_planes(m, n, alpha, pr, pi, beta, c, ldc);
}

/// 3M complex GEMM (Karatsuba-style): three real products
/// P1 = Ar*Br, P2 = Ai*Bi, P3 = (Ar+Ai)*(Br+Bi);
/// Cr = P1 - P2, Ci = P3 - P1 - P2.  Same flop class as the hardware
/// cgemm3m path, with its characteristic cancellation behaviour.
template <typename R>
void gemm_3m(transpose transa, transpose transb, blas_int m, blas_int n,
             blas_int k, std::complex<R> alpha, const std::complex<R>* a,
             blas_int lda, const std::complex<R>* b, blas_int ldb,
             std::complex<R> beta, std::complex<R>* c, blas_int ldc) {
  const blas_int rows_a = transa == transpose::none ? m : k;
  const blas_int cols_a = transa == transpose::none ? k : m;
  const blas_int rows_b = transb == transpose::none ? k : n;
  const blas_int cols_b = transb == transpose::none ? n : k;

  auto [ar, ai] = extract_planes(a, rows_a, cols_a, lda,
                                 transa == transpose::conj_trans);
  auto [br, bi] = extract_planes(b, rows_b, cols_b, ldb,
                                 transb == transpose::conj_trans);
  const transpose ta = real_op(transa);
  const transpose tb = real_op(transb);

  matrix<R> sa(static_cast<std::size_t>(rows_a),
               static_cast<std::size_t>(cols_a));
  for (std::size_t i = 0; i < sa.size(); ++i) {
    sa.data()[i] = ar.data()[i] + ai.data()[i];
  }
  matrix<R> sb(static_cast<std::size_t>(rows_b),
               static_cast<std::size_t>(cols_b));
  for (std::size_t i = 0; i < sb.size(); ++i) {
    sb.data()[i] = br.data()[i] + bi.data()[i];
  }

  matrix<R> p1(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  matrix<R> p2(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  matrix<R> p3(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  gemm_blocked(ta, tb, m, n, k, R(1), ar.data(), rows_a, br.data(), rows_b,
               R(0), p1.data(), m);
  gemm_blocked(ta, tb, m, n, k, R(1), ai.data(), rows_a, bi.data(), rows_b,
               R(0), p2.data(), m);
  gemm_blocked(ta, tb, m, n, k, R(1), sa.data(), rows_a, sb.data(), rows_b,
               R(0), p3.data(), m);

  matrix<R> pr(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  matrix<R> pi(static_cast<std::size_t>(m), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < pr.size(); ++i) {
    const R v1 = p1.data()[i];
    const R v2 = p2.data()[i];
    pr.data()[i] = v1 - v2;
    pi.data()[i] = p3.data()[i] - v1 - v2;
  }
  combine_planes(m, n, alpha, pr, pi, beta, c, ldc);
}

}  // namespace

void gemm_at_mode(compute_mode mode, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k,
                  std::complex<float> alpha, const std::complex<float>* a,
                  blas_int lda, const std::complex<float>* b, blas_int ldb,
                  std::complex<float> beta, std::complex<float>* c,
                  blas_int ldc) {
  validate_gemm_args(transa, transb, m, n, k, a, lda, b, ldb, c, ldc,
                     /*needs_ab=*/alpha != decltype(alpha)(0));
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == std::complex<float>(0)) {
    scale_c(m, n, beta, c, ldc);
    return;
  }
  if (mode == compute_mode::complex_3m) {
    gemm_3m(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else {
    // Standard arithmetic and all split modes share the 4M plane path.
    gemm_4m(mode, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c,
            ldc);
  }
}

void gemm_at_mode(compute_mode mode, transpose transa, transpose transb,
                  blas_int m, blas_int n, blas_int k,
                  std::complex<double> alpha, const std::complex<double>* a,
                  blas_int lda, const std::complex<double>* b, blas_int ldb,
                  std::complex<double> beta, std::complex<double>* c,
                  blas_int ldc) {
  validate_gemm_args(transa, transb, m, n, k, a, lda, b, ldb, c, ldc,
                     /*needs_ab=*/alpha != decltype(alpha)(0));
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == std::complex<double>(0)) {
    scale_c(m, n, beta, c, ldc);
    return;
  }
  // FP32 split modes do not apply to double precision; COMPLEX_3M does.
  if (mode == compute_mode::complex_3m) {
    gemm_3m(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else {
    gemm_4m(compute_mode::standard, transa, transb, m, n, k, alpha, a, lda,
            b, ldb, beta, c, ldc);
  }
}

}  // namespace detail

void cgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, std::complex<float> alpha, const std::complex<float>* a,
           blas_int lda, const std::complex<float>* b, blas_int ldb,
           std::complex<float> beta, std::complex<float>* c, blas_int ldc) {
  run(gemm_call<std::complex<float>>{transa, transb, m, n, k, alpha, a, lda,
                                     b, ldb, beta, c, ldc});
}

void zgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, std::complex<double> alpha,
           const std::complex<double>* a, blas_int lda,
           const std::complex<double>* b, blas_int ldb,
           std::complex<double> beta, std::complex<double>* c,
           blas_int ldc) {
  run(gemm_call<std::complex<double>>{transa, transb, m, n, k, alpha, a,
                                      lda, b, ldb, beta, c, ldc});
}

}  // namespace dcmesh::blas
