#include "dcmesh/blas/precision_policy.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "dcmesh/common/env.hpp"

namespace dcmesh::blas {
namespace {

// Programmatic policy (shared across threads, like set_compute_mode), the
// parsed-env cache, and the per-site guard statistics.
std::mutex g_policy_mutex;
std::shared_ptr<const precision_policy> g_api_policy;  // guarded
std::string g_env_cache_text;                          // guarded
std::shared_ptr<const precision_policy> g_env_cache;   // guarded
bool g_env_warned = false;                             // guarded

std::mutex g_stats_mutex;
std::map<std::string, site_fallback_stats, std::less<>> g_stats;  // guarded

/// Split `text` on ';' or ',' into trimmed non-empty rule strings.
std::vector<std::string_view> split_rules(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ';' || text[i] == ',') {
      const std::string_view piece = trim(text.substr(start, i - start));
      if (!piece.empty()) out.push_back(piece);
      start = i + 1;
    }
  }
  return out;
}

policy_rule parse_rule(std::string_view rule_text) {
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("precision policy rule \"" +
                                std::string(rule_text) + "\": " + what);
  };
  const auto eq = rule_text.find('=');
  if (eq == std::string_view::npos) fail("expected glob=MODE");
  policy_rule rule;
  rule.pattern = std::string(trim(rule_text.substr(0, eq)));
  if (rule.pattern.empty()) fail("empty site glob");

  // MODE and ':'-separated flags.
  std::string_view rest = trim(rule_text.substr(eq + 1));
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= rest.size(); ++i) {
    if (i == rest.size() || rest[i] == ':') {
      parts.push_back(trim(rest.substr(start, i - start)));
      start = i + 1;
    }
  }
  if (parts.empty() || parts[0].empty()) fail("missing compute mode");
  if (to_upper(parts[0]) == "AUTO") {
    rule.automatic = true;  // mode stays standard (the no-resolver fallback)
  } else {
    const auto mode = parse_compute_mode(parts[0]);
    if (!mode) {
      fail("unknown compute mode \"" + std::string(parts[0]) + "\"");
    }
    rule.mode = *mode;
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string flag = to_upper(parts[i]);
    const auto positive_value = [&](std::size_t prefix_len) {
      const std::string value = flag.substr(prefix_len);
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || !(parsed > 0.0)) {
        fail("unparsable value \"" + std::string(parts[i]) + "\"");
      }
      return parsed;
    };
    if (flag == "GUARDED") {
      rule.guarded = true;
    } else if (flag.rfind("TOL=", 0) == 0) {
      rule.guarded = true;  // tol implies guarded
      rule.tolerance = positive_value(4);
    } else if (flag.rfind("ULP=", 0) == 0) {
      rule.ulp_budget = positive_value(4);
    } else if (flag.rfind("ABFT=", 0) == 0) {
      const auto abft = resil::parse_abft_mode(flag.substr(5));
      if (!abft) {
        fail("unknown abft mode \"" + std::string(parts[i]) +
             "\" (want abft=off|detect|correct)");
      }
      rule.abft = *abft;
    } else {
      fail("unknown flag \"" + std::string(parts[i]) + "\"");
    }
  }
  return rule;
}

/// Parsed DCMESH_BLAS_POLICY, cached on the raw env text.  Malformed env
/// policies warn once to stderr and behave as empty (the env path must not
/// throw on every BLAS call).
std::shared_ptr<const precision_policy> env_policy_locked() {
  const auto env = env_get(kPolicyEnvVar);
  const std::string text = env.value_or("");
  if (text == g_env_cache_text && g_env_cache) return g_env_cache;
  g_env_cache_text = text;
  g_env_warned = false;
  try {
    g_env_cache =
        std::make_shared<const precision_policy>(parse_policy(text));
  } catch (const std::invalid_argument& error) {
    if (!g_env_warned) {
      std::fprintf(stderr, "dcmesh: ignoring malformed %s: %s\n",
                   std::string(kPolicyEnvVar).c_str(), error.what());
      g_env_warned = true;
    }
    g_env_cache = std::make_shared<const precision_policy>();
  }
  return g_env_cache;
}

std::shared_ptr<const precision_policy> current_policy() {
  std::lock_guard lock(g_policy_mutex);
  if (g_api_policy) return g_api_policy;
  return env_policy_locked();
}

double default_guard_tolerance() {
  if (const auto env = env_get(kGuardThresholdEnvVar)) {
    char* end = nullptr;
    const double tol = std::strtod(env->c_str(), &end);
    if (end != env->c_str() && *end == '\0' && tol > 0.0) return tol;
  }
  return kDefaultGuardThreshold;
}

}  // namespace

std::string_view name(policy_source source) noexcept {
  switch (source) {
    case policy_source::standard_default: return "standard_default";
    case policy_source::env_global: return "env_global";
    case policy_source::api_global: return "api_global";
    case policy_source::site_policy: return "site_policy";
    case policy_source::scoped: return "scoped";
    case policy_source::call_override: return "call_override";
  }
  return "standard_default";
}

bool glob_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative matcher with single-star backtracking (classic fnmatch
  // shape); '*' crosses '/' deliberately — sites are flat tags.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

const policy_rule* precision_policy::match(
    std::string_view site) const noexcept {
  for (const auto& rule : rules) {
    if (glob_match(rule.pattern, site)) return &rule;
  }
  return nullptr;
}

precision_policy parse_policy(std::string_view text) {
  precision_policy policy;
  for (const std::string_view rule_text : split_rules(text)) {
    policy.rules.push_back(parse_rule(rule_text));
  }
  return policy;
}

void set_policy(precision_policy policy) {
  std::lock_guard lock(g_policy_mutex);
  g_api_policy =
      std::make_shared<const precision_policy>(std::move(policy));
}

void clear_policy() {
  std::lock_guard lock(g_policy_mutex);
  g_api_policy.reset();
}

precision_policy active_policy() { return *current_policy(); }

mode_resolution resolve_compute_mode(
    std::string_view call_site, std::optional<compute_mode> call_override) {
  if (call_override) {
    return {*call_override, policy_source::call_override, false, 0.0};
  }
  if (const auto scoped = scoped_mode_override()) {
    return {*scoped, policy_source::scoped, false, 0.0};
  }
  if (!call_site.empty()) {
    const auto policy = current_policy();
    if (const policy_rule* rule = policy->match(call_site)) {
      return {rule->mode, policy_source::site_policy, rule->guarded,
              rule->tolerance.value_or(default_guard_tolerance()),
              rule->automatic, rule->ulp_budget.value_or(0.0), rule->abft};
    }
  }
  if (const auto api = api_mode_override()) {
    return {*api, policy_source::api_global, false, 0.0};
  }
  if (const auto env = env_mode_override()) {
    return {*env, policy_source::env_global, false, 0.0};
  }
  return {compute_mode::standard, policy_source::standard_default, false,
          0.0};
}

compute_mode next_higher_mode(compute_mode mode) noexcept {
  // Ordered by component mantissa bits: BF16 (7) < TF32 (10) < BF16x2
  // (~15) < BF16x3 (~23) < standard FP32 (23, no split error).
  switch (mode) {
    case compute_mode::float_to_bf16: return compute_mode::float_to_tf32;
    case compute_mode::float_to_tf32: return compute_mode::float_to_bf16x2;
    case compute_mode::float_to_bf16x2:
      return compute_mode::float_to_bf16x3;
    default: return compute_mode::standard;
  }
}

void record_fallback(std::string_view site, bool promoted,
                     compute_mode final_mode, double residual) {
  std::lock_guard lock(g_stats_mutex);
  auto it = g_stats.find(site);
  if (it == g_stats.end()) {
    it = g_stats.emplace(std::string(site), site_fallback_stats{}).first;
  }
  auto& stats = it->second;
  ++stats.guarded_calls;
  if (promoted) ++stats.promotions;
  stats.last_mode = final_mode;
  stats.last_residual = residual;
}

std::vector<std::pair<std::string, site_fallback_stats>> fallback_stats() {
  std::lock_guard lock(g_stats_mutex);
  return {g_stats.begin(), g_stats.end()};
}

void clear_fallback_stats() {
  std::lock_guard lock(g_stats_mutex);
  g_stats.clear();
}

}  // namespace dcmesh::blas
