// dcmesh_blas_c.cpp — implementation of the installed public C API
// (include/dcmesh/dcmesh_blas.h).
//
// This translation unit is the ONLY place the C ABI meets the C++ engine:
// every entry validates its arguments, translates them into a
// gemm_call<T> descriptor (or a gemm_batch_strided call), and catches
// every exception at the boundary — C callers see a dcmesh_status and a
// thread-local error string, never a throw.  The CBLAS compatibility
// layer (cblas_compat.cpp) and the LD_PRELOAD interposition shim
// (src/intercept) are both thin forwarders into these functions, so the
// row-major/column-major identity and the type dispatch live here once.
//
// dcmesh_install_autotuner() is the one declaration NOT defined here: it
// must pull in src/tune, which depends on blas, so its definition lives
// in src/tune/src/capi_tune.cpp (linking dcmesh::tune provides it).

#include "dcmesh/dcmesh_blas.h"

#include <complex>
#include <cstring>
#include <exception>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/gemm_batch.hpp"
#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace {

using namespace dcmesh;
using blas::blas_int;
using blas::compute_mode;
using blas::transpose;

thread_local std::string t_last_error;

int fail(dcmesh_status status, std::string message) {
  t_last_error = std::move(message);
  return static_cast<int>(status);
}

bool valid_type(char type) {
  return type == 's' || type == 'd' || type == 'c' || type == 'z';
}

std::optional<transpose> parse_trans(char t) {
  switch (t) {
    case 'N': case 'n': return transpose::none;
    case 'T': case 't': return transpose::trans;
    case 'C': case 'c': return transpose::conj_trans;
  }
  return std::nullopt;
}

bool valid_layout(dcmesh_layout layout) {
  return layout == DCMESH_LAYOUT_ROW_MAJOR ||
         layout == DCMESH_LAYOUT_COL_MAJOR;
}

std::size_t elem_bytes(char type) {
  switch (type) {
    case 's': return sizeof(float);
    case 'd': return sizeof(double);
    case 'c': return sizeof(std::complex<float>);
    case 'z': return sizeof(std::complex<double>);
  }
  return 0;
}

/// Parse a compute-mode token; nullopt_t result reported by the caller.
std::optional<compute_mode> parse_mode_token(const char* token) {
  return blas::parse_compute_mode(token);
}

/// The shared engine entry: fill one gemm_call<T> (applying the row-major
/// swap identity C_row = A B  <=>  C_col^T = op(B)^T op(A)^T) and run it.
template <typename T>
int run_one(dcmesh_layout layout, transpose ta, transpose tb, int64_t m,
            int64_t n, int64_t k, const void* alpha, const void* a,
            int64_t lda, const void* b, int64_t ldb, const void* beta,
            void* c, int64_t ldc, std::string_view site,
            std::optional<compute_mode> mode) {
  blas::gemm_call<T> call;
  call.alpha = *static_cast<const T*>(alpha);
  call.beta = *static_cast<const T*>(beta);
  if (layout == DCMESH_LAYOUT_COL_MAJOR) {
    call.transa = ta;
    call.transb = tb;
    call.m = static_cast<blas_int>(m);
    call.n = static_cast<blas_int>(n);
    call.k = static_cast<blas_int>(k);
    call.a = static_cast<const T*>(a);
    call.lda = static_cast<blas_int>(lda);
    call.b = static_cast<const T*>(b);
    call.ldb = static_cast<blas_int>(ldb);
  } else {
    call.transa = tb;
    call.transb = ta;
    call.m = static_cast<blas_int>(n);
    call.n = static_cast<blas_int>(m);
    call.k = static_cast<blas_int>(k);
    call.a = static_cast<const T*>(b);
    call.lda = static_cast<blas_int>(ldb);
    call.b = static_cast<const T*>(a);
    call.ldb = static_cast<blas_int>(lda);
  }
  call.c = static_cast<T*>(c);
  call.ldc = static_cast<blas_int>(ldc);
  call.call_site = site;
  call.mode = mode;
  try {
    blas::run(call);
  } catch (const std::invalid_argument& error) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, error.what());
  } catch (const std::exception& error) {
    return fail(DCMESH_ERR_INTERNAL, error.what());
  }
  return DCMESH_OK;
}

template <typename T>
int run_batch(dcmesh_layout layout, transpose ta, transpose tb, int64_t m,
              int64_t n, int64_t k, const void* alpha, const void* a,
              int64_t lda, int64_t stride_a, const void* b, int64_t ldb,
              int64_t stride_b, const void* beta, void* c, int64_t ldc,
              int64_t stride_c, int64_t batch, std::string_view site,
              std::optional<compute_mode> mode) {
  // The batched C++ API has no per-call mode field; a requested override
  // rides on the thread-local scope, which still outranks every policy
  // layer for the duration of the batch.
  std::optional<blas::scoped_compute_mode> scope;
  if (mode) scope.emplace(*mode);
  const auto call = [&](transpose xa, transpose xb, int64_t xm, int64_t xn,
                        const void* xa_ptr, int64_t xlda, int64_t xsa,
                        const void* xb_ptr, int64_t xldb, int64_t xsb) {
    blas::gemm_batch_strided<T>(
        xa, xb, static_cast<blas_int>(xm), static_cast<blas_int>(xn),
        static_cast<blas_int>(k), *static_cast<const T*>(alpha),
        static_cast<const T*>(xa_ptr), static_cast<blas_int>(xlda),
        static_cast<blas_int>(xsa), static_cast<const T*>(xb_ptr),
        static_cast<blas_int>(xldb), static_cast<blas_int>(xsb),
        *static_cast<const T*>(beta), static_cast<T*>(c),
        static_cast<blas_int>(ldc), static_cast<blas_int>(stride_c),
        static_cast<blas_int>(batch), site);
  };
  try {
    if (layout == DCMESH_LAYOUT_COL_MAJOR) {
      call(ta, tb, m, n, a, lda, stride_a, b, ldb, stride_b);
    } else {
      call(tb, ta, n, m, b, ldb, stride_b, a, lda, stride_a);
    }
  } catch (const std::invalid_argument& error) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, error.what());
  } catch (const std::exception& error) {
    return fail(DCMESH_ERR_INTERNAL, error.what());
  }
  return DCMESH_OK;
}

/// Copy-out contract shared by the introspection calls: NUL-terminate
/// whatever fits, return the full untruncated length.
int copy_out(std::string_view s, char* buf, size_t cap) {
  if (buf == nullptr || cap == 0) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "output buffer is null/empty");
  }
  const size_t n = s.size() < cap - 1 ? s.size() : cap - 1;
  std::memcpy(buf, s.data(), n);
  buf[n] = '\0';
  return static_cast<int>(s.size());
}

}  // namespace

extern "C" {

int dcmesh_api_version(void) { return DCMESH_API_VERSION; }

const char* dcmesh_api_version_string(void) {
  return "1.0";
}

const char* dcmesh_last_error(void) { return t_last_error.c_str(); }

int dcmesh_gemm(char type, dcmesh_layout layout, char transa, char transb,
                int64_t m, int64_t n, int64_t k, const void* alpha,
                const void* a, int64_t lda, const void* b, int64_t ldb,
                const void* beta, void* c, int64_t ldc, const char* site,
                const char* mode) {
  if (!valid_type(type)) {
    return fail(DCMESH_ERR_BAD_TYPE,
                std::string("unknown element type '") + type + "'");
  }
  if (!valid_layout(layout)) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "bad layout enum");
  }
  const auto ta = parse_trans(transa);
  const auto tb = parse_trans(transb);
  if (!ta || !tb) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "bad transpose char");
  }
  if (alpha == nullptr || beta == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "alpha/beta must not be null");
  }
  std::optional<compute_mode> mode_value;
  if (mode != nullptr && *mode != '\0') {
    mode_value = parse_mode_token(mode);
    if (!mode_value) {
      return fail(DCMESH_ERR_BAD_MODE,
                  std::string("unknown compute mode \"") + mode + "\"");
    }
  }
  const std::string_view site_view = site == nullptr ? "" : site;
  switch (type) {
    case 's':
      return run_one<float>(layout, *ta, *tb, m, n, k, alpha, a, lda, b,
                            ldb, beta, c, ldc, site_view, mode_value);
    case 'd':
      return run_one<double>(layout, *ta, *tb, m, n, k, alpha, a, lda, b,
                             ldb, beta, c, ldc, site_view, mode_value);
    case 'c':
      return run_one<std::complex<float>>(layout, *ta, *tb, m, n, k, alpha,
                                          a, lda, b, ldb, beta, c, ldc,
                                          site_view, mode_value);
    default:
      return run_one<std::complex<double>>(layout, *ta, *tb, m, n, k, alpha,
                                           a, lda, b, ldb, beta, c, ldc,
                                           site_view, mode_value);
  }
}

int dcmesh_gemm_batch_strided(char type, dcmesh_layout layout, char transa,
                              char transb, int64_t m, int64_t n, int64_t k,
                              const void* alpha, const void* a, int64_t lda,
                              int64_t stride_a, const void* b, int64_t ldb,
                              int64_t stride_b, const void* beta, void* c,
                              int64_t ldc, int64_t stride_c, int64_t batch,
                              const char* site, const char* mode) {
  if (!valid_type(type)) {
    return fail(DCMESH_ERR_BAD_TYPE,
                std::string("unknown element type '") + type + "'");
  }
  if (!valid_layout(layout)) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "bad layout enum");
  }
  const auto ta = parse_trans(transa);
  const auto tb = parse_trans(transb);
  if (!ta || !tb) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "bad transpose char");
  }
  if (alpha == nullptr || beta == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "alpha/beta must not be null");
  }
  std::optional<compute_mode> mode_value;
  if (mode != nullptr && *mode != '\0') {
    mode_value = parse_mode_token(mode);
    if (!mode_value) {
      return fail(DCMESH_ERR_BAD_MODE,
                  std::string("unknown compute mode \"") + mode + "\"");
    }
  }
  const std::string_view site_view = site == nullptr ? "" : site;
  switch (type) {
    case 's':
      return run_batch<float>(layout, *ta, *tb, m, n, k, alpha, a, lda,
                              stride_a, b, ldb, stride_b, beta, c, ldc,
                              stride_c, batch, site_view, mode_value);
    case 'd':
      return run_batch<double>(layout, *ta, *tb, m, n, k, alpha, a, lda,
                               stride_a, b, ldb, stride_b, beta, c, ldc,
                               stride_c, batch, site_view, mode_value);
    case 'c':
      return run_batch<std::complex<float>>(
          layout, *ta, *tb, m, n, k, alpha, a, lda, stride_a, b, ldb,
          stride_b, beta, c, ldc, stride_c, batch, site_view, mode_value);
    default:
      return run_batch<std::complex<double>>(
          layout, *ta, *tb, m, n, k, alpha, a, lda, stride_a, b, ldb,
          stride_b, beta, c, ldc, stride_c, batch, site_view, mode_value);
  }
}

// ----------------------------------------------------------- descriptor

struct dcmesh_gemm_desc {
  char type = 's';
  dcmesh_layout layout = DCMESH_LAYOUT_COL_MAJOR;
  char transa = 'N';
  char transb = 'N';
  int64_t m = 0, n = 0, k = 0;
  // Scalar storage sized for the largest element type; initialised to the
  // type's one/zero at create time.
  alignas(16) unsigned char alpha[16] = {};
  alignas(16) unsigned char beta[16] = {};
  const void* a = nullptr;
  int64_t lda = 0;
  const void* b = nullptr;
  int64_t ldb = 0;
  void* c = nullptr;
  int64_t ldc = 0;
  bool have_shape = false;
  bool have_operands = false;
  std::string site;
  std::optional<compute_mode> mode;
};

dcmesh_gemm_desc* dcmesh_gemm_desc_create(char type) {
  if (!valid_type(type)) {
    fail(DCMESH_ERR_BAD_TYPE,
         std::string("unknown element type '") + type + "'");
    return nullptr;
  }
  auto* desc = new (std::nothrow) dcmesh_gemm_desc;
  if (desc == nullptr) {
    fail(DCMESH_ERR_INTERNAL, "descriptor allocation failed");
    return nullptr;
  }
  desc->type = type;
  switch (type) {
    case 's': *reinterpret_cast<float*>(desc->alpha) = 1.0f; break;
    case 'd': *reinterpret_cast<double*>(desc->alpha) = 1.0; break;
    case 'c':
      *reinterpret_cast<std::complex<float>*>(desc->alpha) = {1.0f, 0.0f};
      break;
    default:
      *reinterpret_cast<std::complex<double>*>(desc->alpha) = {1.0, 0.0};
      break;
  }
  return desc;
}

void dcmesh_gemm_desc_destroy(dcmesh_gemm_desc* desc) { delete desc; }

int dcmesh_gemm_desc_set_layout(dcmesh_gemm_desc* desc,
                                dcmesh_layout layout) {
  if (desc == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "null descriptor");
  }
  if (!valid_layout(layout)) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "bad layout enum");
  }
  desc->layout = layout;
  return DCMESH_OK;
}

int dcmesh_gemm_desc_set_transpose(dcmesh_gemm_desc* desc, char transa,
                                   char transb) {
  if (desc == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "null descriptor");
  }
  if (!parse_trans(transa) || !parse_trans(transb)) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "bad transpose char");
  }
  desc->transa = transa;
  desc->transb = transb;
  return DCMESH_OK;
}

int dcmesh_gemm_desc_set_shape(dcmesh_gemm_desc* desc, int64_t m, int64_t n,
                               int64_t k) {
  if (desc == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "null descriptor");
  }
  if (m < 0 || n < 0 || k < 0) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "negative dimension");
  }
  desc->m = m;
  desc->n = n;
  desc->k = k;
  desc->have_shape = true;
  return DCMESH_OK;
}

int dcmesh_gemm_desc_set_scalars(dcmesh_gemm_desc* desc, const void* alpha,
                                 const void* beta) {
  if (desc == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "null descriptor");
  }
  if (alpha == nullptr || beta == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "alpha/beta must not be null");
  }
  std::memcpy(desc->alpha, alpha, elem_bytes(desc->type));
  std::memcpy(desc->beta, beta, elem_bytes(desc->type));
  return DCMESH_OK;
}

int dcmesh_gemm_desc_set_operands(dcmesh_gemm_desc* desc, const void* a,
                                  int64_t lda, const void* b, int64_t ldb,
                                  void* c, int64_t ldc) {
  if (desc == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "null descriptor");
  }
  if (a == nullptr || b == nullptr || c == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "operand must not be null");
  }
  desc->a = a;
  desc->lda = lda;
  desc->b = b;
  desc->ldb = ldb;
  desc->c = c;
  desc->ldc = ldc;
  desc->have_operands = true;
  return DCMESH_OK;
}

int dcmesh_gemm_desc_set_site(dcmesh_gemm_desc* desc, const char* site) {
  if (desc == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "null descriptor");
  }
  desc->site = site == nullptr ? "" : site;
  return DCMESH_OK;
}

int dcmesh_gemm_desc_set_mode(dcmesh_gemm_desc* desc, const char* mode) {
  if (desc == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "null descriptor");
  }
  if (mode == nullptr || *mode == '\0') {
    desc->mode = std::nullopt;
    return DCMESH_OK;
  }
  const auto parsed = parse_mode_token(mode);
  if (!parsed) {
    return fail(DCMESH_ERR_BAD_MODE,
                std::string("unknown compute mode \"") + mode + "\"");
  }
  desc->mode = parsed;
  return DCMESH_OK;
}

int dcmesh_gemm_execute(const dcmesh_gemm_desc* desc) {
  if (desc == nullptr) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "null descriptor");
  }
  if (!desc->have_shape || !desc->have_operands) {
    return fail(DCMESH_ERR_INCOMPLETE,
                "descriptor executed before set_shape/set_operands");
  }
  const auto ta = *parse_trans(desc->transa);
  const auto tb = *parse_trans(desc->transb);
  switch (desc->type) {
    case 's':
      return run_one<float>(desc->layout, ta, tb, desc->m, desc->n, desc->k,
                            desc->alpha, desc->a, desc->lda, desc->b,
                            desc->ldb, desc->beta, desc->c, desc->ldc,
                            desc->site, desc->mode);
    case 'd':
      return run_one<double>(desc->layout, ta, tb, desc->m, desc->n,
                             desc->k, desc->alpha, desc->a, desc->lda,
                             desc->b, desc->ldb, desc->beta, desc->c,
                             desc->ldc, desc->site, desc->mode);
    case 'c':
      return run_one<std::complex<float>>(
          desc->layout, ta, tb, desc->m, desc->n, desc->k, desc->alpha,
          desc->a, desc->lda, desc->b, desc->ldb, desc->beta, desc->c,
          desc->ldc, desc->site, desc->mode);
    default:
      return run_one<std::complex<double>>(
          desc->layout, ta, tb, desc->m, desc->n, desc->k, desc->alpha,
          desc->a, desc->lda, desc->b, desc->ldb, desc->beta, desc->c,
          desc->ldc, desc->site, desc->mode);
  }
}

// ------------------------------------------------- process-wide control

int dcmesh_set_policy(const char* policy_text) {
  if (policy_text == nullptr || *policy_text == '\0') {
    blas::clear_policy();
    return DCMESH_OK;
  }
  try {
    blas::set_policy(blas::parse_policy(policy_text));
  } catch (const std::invalid_argument& error) {
    return fail(DCMESH_ERR_BAD_POLICY, error.what());
  }
  return DCMESH_OK;
}

int dcmesh_set_compute_mode(const char* mode) {
  if (mode == nullptr || *mode == '\0') {
    blas::clear_compute_mode();
    return DCMESH_OK;
  }
  const auto parsed = parse_mode_token(mode);
  if (!parsed) {
    return fail(DCMESH_ERR_BAD_MODE,
                std::string("unknown compute mode \"") + mode + "\"");
  }
  blas::set_compute_mode(*parsed);
  return DCMESH_OK;
}

int dcmesh_set_num_threads(int threads) {
  if (threads < 0) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "negative thread count");
  }
  blas::set_num_threads(threads);
  return DCMESH_OK;
}

// ----------------------------------------------------------- introspection

uint64_t dcmesh_call_count(void) { return blas::call_count(); }

int dcmesh_last_call_site(char* buf, size_t cap) {
  const auto calls = blas::recent_calls();
  if (calls.empty()) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "no call recorded yet");
  }
  return copy_out(calls.back().call_site, buf, cap);
}

int dcmesh_last_call_mode(char* buf, size_t cap) {
  const auto calls = blas::recent_calls();
  if (calls.empty()) {
    return fail(DCMESH_ERR_INVALID_ARGUMENT, "no call recorded yet");
  }
  return copy_out(blas::info(calls.back().mode).env_token, buf, cap);
}

int dcmesh_metrics_report(char* buf, size_t cap) {
  return copy_out(trace::gemm_metrics_report(), buf, cap);
}

}  // extern "C"
