#pragma once
// trsm.hpp — triangular solve with multiple right-hand sides.
//
// Needed by the Cholesky-based orthonormalization path (the level-3 way
// production SCF codes orthonormalize: S = Psi^H Psi = L L^H, then
// Psi <- Psi L^-H via trsm).  Column-major, reference-BLAS semantics.

#include <complex>
#include <string_view>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/rank_k.hpp"  // uplo

namespace dcmesh::blas {

/// Which side the triangular matrix A sits on.
enum class side : char { left = 'L', right = 'R' };

/// Unit-diagonal flag.
enum class diag : char { non_unit = 'N', unit = 'U' };

/// Solve op(A) X = alpha B (side::left) or X op(A) = alpha B
/// (side::right), overwriting B with X.  A is m x m (left) or n x n
/// (right) triangular per `u`; op per `trans` (conj_trans conjugates).
/// Throws std::invalid_argument on malformed arguments or a zero pivot
/// with diag::non_unit.
/// Triangular solves always run standard arithmetic (alternative compute
/// modes never apply — a low-precision divide would poison the solve), but
/// every call is timed and logged like the GEMM family; `call_site` tags
/// the record for MKL_VERBOSE/JSONL attribution.
template <typename T>
void trsm(side s, uplo u, transpose trans, diag d, blas_int m, blas_int n,
          T alpha, const T* a, blas_int lda, T* b, blas_int ldb,
          std::string_view call_site = {});

}  // namespace dcmesh::blas
