#pragma once
// precision_policy.hpp — per-call-site precision policies with accuracy
// guards.
//
// The paper's future-work item is running *different BLAS calls at
// different precisions*.  The process-wide MKL_BLAS_COMPUTE_MODE switch
// (compute_mode.hpp) cannot express that, because nothing identifies which
// call a call is.  This subsystem closes the gap: every level-3 call may
// carry a `call_site` tag (e.g. "lfd/nlp_prop/overlap"), and a policy —
// an ordered list of glob rules — maps sites to compute modes.
//
// Resolution order for one call (most specific wins):
//  1. a per-call mode in the gemm_call descriptor (programmatic override),
//  2. a thread-local scoped_compute_mode,
//  3. the first matching policy rule (set_policy() > DCMESH_BLAS_POLICY),
//  4. the process-wide mode (set_compute_mode() > MKL_BLAS_COMPUTE_MODE),
//  5. compute_mode::standard.
// Steps 2/4/5 reproduce the pre-policy behaviour exactly, so untagged
// callers are unaffected.
//
// Policy grammar (DCMESH_BLAS_POLICY and run_config::blas_policy):
//   policy := rule (';' rule)*            (',' is also accepted)
//   rule   := glob '=' MODE (':' flag)*
//   flag   := 'guarded' | 'tol=<float>'   (tol implies guarded)
//           | 'ulp=<float>'               (auto-mode ULP error budget)
//           | 'abft=<off|detect|correct>' (per-site ABFT checksum guard,
//                                          overriding the DCMESH_ABFT
//                                          process default; resil/abft.hpp)
// where glob uses '*' (any sequence, '/' included) and '?' (one char), and
// MODE is any MKL_BLAS_COMPUTE_MODE token, case-insensitive — or AUTO,
// which delegates the choice to the accuracy-aware autotuner (src/tune)
// through the auto_tune_hook.  Example:
//   lfd/remap_occ/*=FLOAT_TO_BF16X2;lfd/nlp_prop/*=AUTO:ulp=512
// Rules are checked in order; the first match wins.
//
// A `guarded` rule enables the accuracy-guarded fallback: after a
// low-precision product, the dispatcher computes a row-sampled residual
// against a reference in the operand precision and transparently re-runs
// the call at the next-higher mode while the relative error exceeds the
// rule's tolerance (graceful degradation; the decision is recorded in the
// verbose log and in the per-site fallback statistics below).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/resil/abft.hpp"

namespace dcmesh::blas {

/// Where a call's effective compute mode came from.
enum class policy_source {
  standard_default,  ///< Nothing requested anything; standard arithmetic.
  env_global,        ///< MKL_BLAS_COMPUTE_MODE environment variable.
  api_global,        ///< set_compute_mode() process-wide override.
  site_policy,       ///< A matching per-site policy rule.
  scoped,            ///< Thread-local scoped_compute_mode.
  call_override,     ///< Per-call mode in the gemm_call descriptor.
};

/// Display name of a policy source, e.g. "site_policy".
[[nodiscard]] std::string_view name(policy_source source) noexcept;

/// One policy rule: sites matching `pattern` run at `mode` (or, when
/// `automatic`, at whatever the installed autotuner picks per shape).
struct policy_rule {
  std::string pattern;     ///< Glob over call-site tags ('*' and '?').
  compute_mode mode = compute_mode::standard;
  bool guarded = false;    ///< Enable the accuracy-guarded fallback.
  /// Relative residual tolerance for the guard; the global default
  /// (DCMESH_BLAS_GUARD_THRESHOLD or kDefaultGuardThreshold) when unset.
  std::optional<double> tolerance;
  /// MODE was AUTO: defer per-shape mode choice to the auto_tune_hook
  /// (`mode` is ignored; standard when no resolver is installed).
  bool automatic = false;
  /// Componentwise error budget for automatic rules, in ULPs of the
  /// storage precision; the tuner's default (DCMESH_TUNE_ULP_BUDGET)
  /// when unset.
  std::optional<double> ulp_budget;
  /// Per-site ABFT override (`abft=` flag); the DCMESH_ABFT process
  /// default applies when unset.
  std::optional<resil::abft_mode> abft;
};

/// An ordered rule list; first match wins.
struct precision_policy {
  std::vector<policy_rule> rules;

  /// First rule whose pattern matches `site`; nullptr when none does.
  [[nodiscard]] const policy_rule* match(std::string_view site) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
};

/// Glob matcher used by policy rules: '*' matches any sequence (including
/// '/'), '?' matches exactly one character, everything else literally.
[[nodiscard]] bool glob_match(std::string_view pattern,
                              std::string_view text) noexcept;

/// Parse policy text per the grammar above.  Throws std::invalid_argument
/// naming the offending rule on malformed input (missing '=', unknown mode
/// token, unknown flag, unparsable tolerance).
[[nodiscard]] precision_policy parse_policy(std::string_view text);

/// Install a process-wide policy programmatically (overrides the
/// DCMESH_BLAS_POLICY environment variable until clear_policy()).
void set_policy(precision_policy policy);

/// Drop the programmatic policy and fall back to the environment.
void clear_policy();

/// The currently effective policy: the programmatic one if installed, else
/// the parsed DCMESH_BLAS_POLICY environment variable (re-read on every
/// query; a malformed env policy is ignored after a one-time warning).
[[nodiscard]] precision_policy active_policy();

/// Outcome of resolving one call's compute mode.
struct mode_resolution {
  compute_mode mode = compute_mode::standard;
  policy_source source = policy_source::standard_default;
  bool guarded = false;      ///< Run the accuracy-guarded fallback path.
  double tolerance = 0.0;    ///< Guard tolerance (valid when guarded).
  /// An AUTO rule matched: the dispatcher must consult the auto_tune_hook
  /// for the concrete mode (`mode` holds the standard fallback).
  bool automatic = false;
  double ulp_budget = 0.0;   ///< AUTO error budget (0 = tuner default).
  /// Per-site ABFT override from the matched rule; the process default
  /// (active_abft_mode()) applies when unset.
  std::optional<resil::abft_mode> abft;
};

/// Resolve the effective mode for a call tagged `call_site` (may be empty)
/// with optional per-call override, per the resolution order above.
[[nodiscard]] mode_resolution resolve_compute_mode(
    std::string_view call_site, std::optional<compute_mode> call_override);

/// The next more accurate mode the guard promotes to:
/// BF16 -> TF32 -> BF16x2 -> BF16x3 -> standard; COMPLEX_3M -> standard.
[[nodiscard]] compute_mode next_higher_mode(compute_mode mode) noexcept;

/// Per-site accuracy-guard statistics.
struct site_fallback_stats {
  std::uint64_t guarded_calls = 0;  ///< Calls that ran the guard check.
  std::uint64_t promotions = 0;     ///< Calls re-run at a higher mode.
  compute_mode last_mode = compute_mode::standard;  ///< Final mode last run.
  double last_residual = 0.0;       ///< Sampled relative residual last run.
};

/// Record a guard outcome for `site` (called by the dispatcher).
void record_fallback(std::string_view site, bool promoted,
                     compute_mode final_mode, double residual);

/// Snapshot of the per-site guard statistics, sorted by site.
[[nodiscard]] std::vector<std::pair<std::string, site_fallback_stats>>
fallback_stats();

/// Reset the guard statistics.
void clear_fallback_stats();

/// Default relative residual tolerance of guarded rules.
inline constexpr double kDefaultGuardThreshold = 1e-2;

/// Environment variable holding the policy text.
inline constexpr std::string_view kPolicyEnvVar = "DCMESH_BLAS_POLICY";

/// Environment variable overriding kDefaultGuardThreshold.
inline constexpr std::string_view kGuardThresholdEnvVar =
    "DCMESH_BLAS_GUARD_THRESHOLD";

}  // namespace dcmesh::blas
