#pragma once
// gemm_ref.hpp — naive reference GEMM (definition of blas::detail::gemm_ref).
//
// O(mnk) triple loop with a selectable accumulator type.  It exists so the
// blocked kernels, the split paths, and the complex 3M/4M algorithms can be
// validated against an implementation whose correctness is obvious, and so
// tests can build high-precision baselines (e.g. float data accumulated in
// double).

#include <complex>
#include <type_traits>

#include "dcmesh/blas/blas.hpp"

namespace dcmesh::blas::detail {

template <typename T, typename Acc>
void gemm_ref(transpose transa, transpose transb, blas_int m, blas_int n,
              blas_int k, T alpha, const T* a, blas_int lda, const T* b,
              blas_int ldb, T beta, T* c, blas_int ldc) {
  const auto element = [](const T* x, blas_int ld, transpose op, blas_int r,
                          blas_int col) -> T {
    if (op == transpose::none) return x[r + col * ld];
    const T v = x[col + r * ld];
    if constexpr (std::is_floating_point_v<T>) {
      return v;
    } else {
      return op == transpose::conj_trans ? std::conj(v) : v;
    }
  };
  for (blas_int j = 0; j < n; ++j) {
    for (blas_int i = 0; i < m; ++i) {
      Acc sum{};
      for (blas_int p = 0; p < k; ++p) {
        sum += static_cast<Acc>(element(a, lda, transa, i, p)) *
               static_cast<Acc>(element(b, ldb, transb, p, j));
      }
      T& out = c[i + j * ldc];
      const T product = alpha * static_cast<T>(sum);
      out = beta == T(0) ? product : static_cast<T>(beta * out + product);
    }
  }
}

}  // namespace dcmesh::blas::detail
