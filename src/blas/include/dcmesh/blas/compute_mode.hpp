#pragma once
// compute_mode.hpp — oneMKL-style alternative BLAS compute modes.
//
// Reproduces the control surface the paper relies on (Section III-B,
// Table II): modes are selected either through the MKL_BLAS_COMPUTE_MODE
// environment variable — requiring *no source changes* in the application —
// or programmatically.  The mode applies to every level-3 call in the
// process, exactly like the MKL env var; a scoped override is provided as
// the paper's "different BLAS calls at different precision" future-work
// extension.

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace dcmesh::blas {

/// Alternative compute modes for level-3 BLAS (paper Table II).
enum class compute_mode {
  standard,        ///< Default FP32/FP64/complex arithmetic.
  float_to_bf16,   ///< FP32 inputs rounded to 1 BF16 component.
  float_to_bf16x2, ///< FP32 inputs split into 2 BF16 components (3 products).
  float_to_bf16x3, ///< FP32 inputs split into 3 BF16 components (6 products).
  float_to_tf32,   ///< FP32 inputs rounded to TF32 (1 product).
  complex_3m,      ///< 3M complex multiplication (3 real products, not 4).
};

/// Number of distinct modes (including standard).
inline constexpr int kNumComputeModes = 6;

/// Static description of one compute mode.
struct compute_mode_info {
  compute_mode mode;
  std::string_view name;       ///< Display name, e.g. "BF16x2".
  std::string_view env_token;  ///< MKL_BLAS_COMPUTE_MODE value.
  /// Number of real component products per real multiplication
  /// (1 for BF16/TF32, 3 for BF16x2, 6 for BF16x3; 1 for standard/3M).
  int component_products;
  /// Peak theoretical speedup vs FP32 vector peak (paper Table II):
  /// BF16 16x, BF16x2 16/3, BF16x3 8/3, TF32 8x, 3M 4/3, standard 1.
  double peak_theoretical_speedup;
  /// Mantissa bits of the component format (23 for standard/3M).
  int component_mantissa_bits;
};

/// Registry of all modes in Table II order (standard first).
[[nodiscard]] const std::array<compute_mode_info, kNumComputeModes>&
compute_mode_registry() noexcept;

/// Lookup the registry entry for `mode`.
[[nodiscard]] const compute_mode_info& info(compute_mode mode) noexcept;

/// Display name, e.g. "FLOAT_TO_BF16X2" -> "BF16x2".
[[nodiscard]] std::string_view name(compute_mode mode) noexcept;

/// Parse an MKL_BLAS_COMPUTE_MODE token (case-insensitive); nullopt if the
/// token names no known mode.
[[nodiscard]] std::optional<compute_mode> parse_compute_mode(
    std::string_view token) noexcept;

/// The active mode as seen by the calling thread.  Resolution order,
/// matching oneMKL plus the scoped extension:
///  1. a scoped_compute_mode active on *this thread* (thread-local),
///  2. a value set through set_compute_mode() (the "dedicated API",
///     *process-wide*: every thread sees it),
///  3. the MKL_BLAS_COMPUTE_MODE environment variable (process-wide),
///  4. compute_mode::standard.
/// The environment variable is re-read on every query so tests/examples can
/// flip it at run time, as the paper's artifact instructions do.
///
/// Note: tagged calls resolve through resolve_compute_mode() in
/// precision_policy.hpp, which inserts per-site policies between layers
/// 1 and 2; for untagged calls the two resolutions are identical.
[[nodiscard]] compute_mode active_compute_mode();

/// Programmatically force a mode (overrides the environment variable).
/// Process-wide: affects every thread, like mkl_set_* APIs.  A thread's
/// scoped_compute_mode still takes precedence on that thread.
void set_compute_mode(compute_mode mode);

/// Drop any programmatic override and fall back to the environment.
void clear_compute_mode();

/// RAII scope that forces a mode for the current thread's BLAS calls and
/// restores the previous state on destruction.  This is the paper's
/// future-work item — per-call-site precision — implemented.
///
/// Thread-local by design: the override is invisible to other threads
/// (they keep resolving through set_compute_mode()/the environment), it
/// does not follow work handed to a thread pool, and a scope constructed
/// on one thread must be destroyed on the same thread.  Scopes nest per
/// thread; destruction restores that thread's previous scoped state.
class scoped_compute_mode {
 public:
  explicit scoped_compute_mode(compute_mode mode);
  ~scoped_compute_mode();
  scoped_compute_mode(const scoped_compute_mode&) = delete;
  scoped_compute_mode& operator=(const scoped_compute_mode&) = delete;

 private:
  bool had_previous_;
  compute_mode previous_;
};

/// The calling thread's scoped override, if a scoped_compute_mode is
/// active on it (layer 1 of the resolution order).
[[nodiscard]] std::optional<compute_mode> scoped_mode_override() noexcept;

/// The process-wide set_compute_mode() override, if set (layer 2).
[[nodiscard]] std::optional<compute_mode> api_mode_override();

/// The mode requested by MKL_BLAS_COMPUTE_MODE, if set and valid (layer 3).
[[nodiscard]] std::optional<compute_mode> env_mode_override();

/// Name of the controlling environment variable.
inline constexpr std::string_view kComputeModeEnvVar =
    "MKL_BLAS_COMPUTE_MODE";

}  // namespace dcmesh::blas
