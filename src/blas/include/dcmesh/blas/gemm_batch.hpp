#pragma once
// gemm_batch.hpp — strided batched GEMM (oneMKL's *gemm_batch_strided).
//
// Quantum-dynamics codes frequently multiply many same-shaped small
// matrices (per k-point, per projector block); oneMKL serves these with
// the batched API, which inherits the alternative compute modes exactly
// like gemm.  minimkl provides the strided variant: operand i lives at
// base + i * stride.

#include <complex>
#include <string_view>

#include "dcmesh/blas/blas.hpp"

namespace dcmesh::blas {

/// For each i in [0, batch): C_i <- alpha*op(A_i)*op(B_i) + beta*C_i,
/// where X_i = x + i*stride_x.  All problems share shape, ops, alpha and
/// beta (the MKL "strided" flavour).  Strides must be large enough that
/// operands do not alias within the batch (>= the operand's footprint);
/// stride 0 is allowed for A or B (shared operand), not for C.
/// Every problem dispatches through the gemm_call descriptor path under
/// the shared `call_site` tag, so per-site precision policies (and the
/// accuracy guard) apply to batched products exactly like to plain gemm.
/// The policy — including an AUTO rule's tuner resolution — is consulted
/// once for the whole batch; the trace layer sees one span per batched
/// call (carrying batch and batch-total flops), while the verbose log and
/// the metrics registry keep one record per problem, summing to
/// batch x 2mnk flops.
template <typename T>
void gemm_batch_strided(transpose transa, transpose transb, blas_int m,
                        blas_int n, blas_int k, T alpha, const T* a,
                        blas_int lda, blas_int stride_a, const T* b,
                        blas_int ldb, blas_int stride_b, T beta, T* c,
                        blas_int ldc, blas_int stride_c, blas_int batch,
                        std::string_view call_site = {});

}  // namespace dcmesh::blas
