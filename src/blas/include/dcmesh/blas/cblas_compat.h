#pragma once
/* cblas_compat.h — LEGACY CBLAS-style C API for minimkl (internal).
 *
 * DEPRECATED as a public surface: the installed, versioned public C API
 * is include/dcmesh/dcmesh_blas.h (dcmesh_gemm and the descriptor
 * entry points), and unmodified binaries get the standard CBLAS/Fortran
 * names through libdcmesh_intercept.so.  These dcmesh_cblas_* spellings
 * are kept for in-tree and existing callers; they are now pure thin
 * wrappers over dcmesh_gemm() (see cblas_compat.cpp) and may move out of
 * the installed set in a future major version.
 *
 * DCMESH mixes Fortran and C++; the paper's methodology works because the
 * whole application funnels through one BLAS with one environment switch.
 * This header exposes the level-3 entry points with CBLAS conventions
 * (row- or column-major layout, integer enums, void* complex scalars) so
 * C and Fortran-adjacent callers link against minimkl unchanged — and
 * inherit MKL_BLAS_COMPUTE_MODE handling for free.
 *
 * Row-major calls are forwarded through the standard identity
 *   C_row = A B  <=>  C_col^T = B^T A^T
 * (swap operands, swap m/n, same transposes applied to the swapped
 * operands), so both layouts share one implementation.
 */

#ifdef __cplusplus
extern "C" {
#endif

typedef enum {
  DcmeshCblasRowMajor = 101,
  DcmeshCblasColMajor = 102
} DCMESH_CBLAS_LAYOUT;

typedef enum {
  DcmeshCblasNoTrans = 111,
  DcmeshCblasTrans = 112,
  DcmeshCblasConjTrans = 113
} DCMESH_CBLAS_TRANSPOSE;

/* C <- alpha*op(A)*op(B) + beta*C, single precision real. */
void dcmesh_cblas_sgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        float alpha, const float* a, int lda,
                        const float* b, int ldb, float beta, float* c,
                        int ldc);

/* C <- alpha*op(A)*op(B) + beta*C, double precision real. */
void dcmesh_cblas_dgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        double alpha, const double* a, int lda,
                        const double* b, int ldb, double beta, double* c,
                        int ldc);

/* Complex variants: alpha/beta point at {re, im} pairs, as in CBLAS. */
void dcmesh_cblas_cgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        const void* alpha, const void* a, int lda,
                        const void* b, int ldb, const void* beta, void* c,
                        int ldc);

void dcmesh_cblas_zgemm(DCMESH_CBLAS_LAYOUT layout,
                        DCMESH_CBLAS_TRANSPOSE transa,
                        DCMESH_CBLAS_TRANSPOSE transb, int m, int n, int k,
                        const void* alpha, const void* a, int lda,
                        const void* b, int ldb, const void* beta, void* c,
                        int ldc);

#ifdef __cplusplus
}  /* extern "C" */
#endif
