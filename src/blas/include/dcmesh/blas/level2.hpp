#pragma once
// level2.hpp — BLAS level-2 routines of minimkl (gemv, ger/gerc).
//
// Matrix-vector products appear in DCMESH-style codes for single-orbital
// projections and observable contractions.  Like level 1, these never run
// alternative compute modes (oneMKL's FLOAT_TO_* / COMPLEX_3M are level-3
// controls).

#include <complex>
#include <string_view>

#include "dcmesh/blas/blas.hpp"

namespace dcmesh::blas {

/// y <- alpha*op(A)*x + beta*y, column-major A (m x n), leading dim lda.
/// Matrix-vector products always run standard arithmetic (the FLOAT_TO_*
/// compute modes are level-3 controls), but every call is timed and
/// logged like the GEMM family; `call_site` tags the record for
/// MKL_VERBOSE/JSONL attribution — interposed binaries get their return-
/// address site here, exactly like trsm/syrk.
template <typename T>
void gemv(transpose trans, blas_int m, blas_int n, T alpha, const T* a,
          blas_int lda, const T* x, blas_int incx, T beta, T* y,
          blas_int incy, std::string_view call_site = {});

/// Rank-1 update A <- alpha*x*y^T + A (ger / geru).
template <typename T>
void ger(blas_int m, blas_int n, T alpha, const T* x, blas_int incx,
         const T* y, blas_int incy, T* a, blas_int lda);

/// Conjugated rank-1 update A <- alpha*x*y^H + A (gerc); equals ger for
/// real T.
template <typename T>
void gerc(blas_int m, blas_int n, T alpha, const T* x, blas_int incx,
          const T* y, blas_int incy, T* a, blas_int lda);

}  // namespace dcmesh::blas
