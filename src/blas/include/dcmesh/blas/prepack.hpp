#pragma once
// prepack.hpp — ahead-of-time B-operand packing for pack/compute overlap.
//
// prepack_b() packs op(B) into the blocked GEMM core's panel layout and
// parks the result in a process-wide cache keyed by the exact call
// signature (pointer, ldb, op, k, n, element type).  The next matching
// GEMM consumes the panels (one-shot) instead of packing inline — the
// step scheduler runs prepack_b for call k+1 as a graph node concurrent
// with call k's compute.
//
// Correctness contract: the operand bytes must be final at prepack time
// and unchanged until the consuming GEMM — the engine only prepacks
// operands frozen for the whole step (remap_occ's psi0 block).  Consumed
// or not, panels never alter results: pack_b is deterministic, so the
// prepacked bytes are identical to what the inline pack would produce.

#include <complex>
#include <cstddef>

#include "dcmesh/blas/blas.hpp"

namespace dcmesh::blas {

/// Pack op(B) (k x n after op) ahead of time for a future GEMM with this
/// exact (b, ldb, transb, k, n, element type) signature.  Thread-safe;
/// replaces any previous entry with the same signature.  No-op for empty
/// shapes.
template <typename T>
void prepack_b(transpose transb, blas_int k, blas_int n, const T* b,
               blas_int ldb);

extern template void prepack_b<float>(transpose, blas_int, blas_int,
                                      const float*, blas_int);
extern template void prepack_b<double>(transpose, blas_int, blas_int,
                                       const double*, blas_int);
extern template void prepack_b<std::complex<float>>(
    transpose, blas_int, blas_int, const std::complex<float>*, blas_int);
extern template void prepack_b<std::complex<double>>(
    transpose, blas_int, blas_int, const std::complex<double>*, blas_int);

/// Drop every unconsumed prepacked panel (the engine calls this at step
/// end so stale pointers can never match a future operand by accident).
void clear_prepacked();

/// Number of unconsumed prepacked entries (tests, metrics).
[[nodiscard]] std::size_t prepacked_count();

}  // namespace dcmesh::blas
