#pragma once
// autotune_hook.hpp — the dispatcher-side seam of the `auto` compute mode.
//
// A policy rule may map a call site to AUTO instead of a concrete compute
// mode (e.g. DCMESH_BLAS_POLICY="lfd/*=auto").  The dispatcher cannot
// decide what AUTO means — measuring kernels and persisting wisdom is the
// src/tune subsystem's job, and blas must not depend on tune (tune runs
// its calibration GEMMs *through* blas).  So the decision arrives through
// an installable callback, exactly like trace::set_gemm_time_model(): tune
// (via core::driver, or a test) installs a resolver; an auto-resolved call
// builds an auto_tune_request and takes whatever mode comes back.  With no
// resolver installed, AUTO degrades safely to standard arithmetic.

#include <functional>
#include <optional>
#include <string_view>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"

namespace dcmesh::blas {

/// How an `auto` decision was produced (annotated on verbose records,
/// metrics, and trace spans so runs are auditable).
enum class auto_provenance {
  none,        ///< Call was not auto-resolved.
  calibrated,  ///< Modes were timed + error-measured on this resolve.
  cached,      ///< Served from the in-memory or on-disk wisdom cache.
  modeled,     ///< Shape too small to time; cost model ranked the modes.
  defaulted,   ///< No resolver installed (or it declined): standard.
};

/// Display name of a provenance: "calibrated", "cached", ...
[[nodiscard]] std::string_view name(auto_provenance provenance) noexcept;

/// One auto-resolution request: the identity and shape of the call whose
/// mode the tuner must choose.
struct auto_tune_request {
  std::string_view call_site;  ///< Site tag ("" = untagged).
  std::string_view routine;    ///< "SGEMM", "DGEMM", "CGEMM", "ZGEMM".
  blas_int m = 0;
  blas_int n = 0;
  blas_int k = 0;
  bool is_complex = false;
  bool is_fp64 = false;
  /// Per-site componentwise error budget in ULPs of the storage precision
  /// (the rule's ulp= flag); 0 = use the tuner's default budget.
  double ulp_budget = 0.0;
  /// The resolved call will run under ABFT checksums: the tuner measures
  /// and wisdom-records the checksum overhead for this shape class so the
  /// choice (and its recorded cost) accounts for it.
  bool abft = false;
};

/// The resolver's answer.
struct auto_tune_choice {
  compute_mode mode = compute_mode::standard;
  auto_provenance provenance = auto_provenance::defaulted;
  /// Measured (calibrated/cached) or bounded (modeled) componentwise
  /// error of `mode` in storage-precision ULPs; 0 when unknown.
  double err_ulp = 0.0;
  /// Tuned cache blocking (MC/NC) for this shape class; 0 = no tuned
  /// blocking, use the per-ISA defaults.  Blocking only partitions the
  /// output sweep, so applying it never changes results bit-for-bit.
  blas_int block_m = 0;
  blas_int block_n = 0;
  /// Measured ABFT (abft=correct) time overhead for this shape class as a
  /// fraction of the plain call (0.15 = +15%); 0 when never measured.
  double abft_overhead = 0.0;
};

using auto_tune_fn =
    std::function<std::optional<auto_tune_choice>(const auto_tune_request&)>;

/// Install the auto resolver (tune::install_auto_tuner() points this at the
/// process-wide autotuner).  An empty function uninstalls.  Thread-safe.
void set_auto_tune_hook(auto_tune_fn fn);

/// True when a resolver is installed.
[[nodiscard]] bool auto_tune_hook_installed();

/// Run the installed resolver; nullopt when none is installed or the
/// resolver declines.  Called by the dispatcher for auto-resolved calls.
[[nodiscard]] std::optional<auto_tune_choice> auto_tune_resolve(
    const auto_tune_request& request);

}  // namespace dcmesh::blas
