#pragma once
// rank_k.hpp — symmetric / Hermitian rank-k updates (syrk, herk).
//
// Overlap and occupation matrices in DCMESH (G = Psi^H Psi, O = S S^H) are
// Hermitian by construction; herk computes them with half the redundancy
// and guarantees exact hermiticity of the result.  Like every level-3
// routine, these honour the active compute mode (the component products
// run through the same machinery as gemm).

#include <complex>
#include <string_view>

#include "dcmesh/blas/blas.hpp"

namespace dcmesh::blas {

/// Which triangle of C is referenced/updated.
enum class uplo : char { upper = 'U', lower = 'L' };

/// C <- alpha*op(A)*op(A)^T + beta*C with C symmetric (real).
/// trans == none: op(A) = A (n x k); trans == trans: op(A) = A^T (k x n
/// stored).  Only the `u` triangle of C is read; the full matrix is
/// written symmetrically.  `call_site` tags the underlying product for the
/// per-site precision policy engine (empty = untagged).
template <typename T>
void syrk(uplo u, transpose trans, blas_int n, blas_int k, T alpha,
          const T* a, blas_int lda, T beta, T* c, blas_int ldc,
          std::string_view call_site = {});

/// C <- alpha*op(A)*op(A)^H + beta*C with C Hermitian; alpha and beta are
/// real, and the diagonal of C is kept exactly real.
/// trans == none: op(A) = A (n x k); trans == conj_trans: op(A) = A^H.
/// `call_site` tags the underlying product for the per-site precision
/// policy engine (empty = untagged).
template <typename R>
void herk(uplo u, transpose trans, blas_int n, blas_int k, R alpha,
          const std::complex<R>* a, blas_int lda, R beta,
          std::complex<R>* c, blas_int ldc, std::string_view call_site = {});

}  // namespace dcmesh::blas
