#pragma once
// level1.hpp — BLAS level-1 routines of minimkl.
//
// The LFD propagator's vector updates (Taylor-term axpy, column scaling,
// norms) and the SCF inner products run through these instead of ad-hoc
// loops, mirroring how DCMESH leans on the vendor BLAS throughout.
// Alternative compute modes do NOT apply to level 1 — in oneMKL they are
// level-3 only — so these are always standard arithmetic.

#include <complex>
#include <cstdint>

namespace dcmesh::blas {

using blas_int = std::int64_t;

/// y <- alpha*x + y.
template <typename T>
void axpy(blas_int n, T alpha, const T* x, blas_int incx, T* y,
          blas_int incy);

/// x <- alpha*x.
template <typename T>
void scal(blas_int n, T alpha, T* x, blas_int incx);

/// Scale a complex vector by a real factor (csscal/zdscal).
template <typename R>
void scal_real(blas_int n, R alpha, std::complex<R>* x, blas_int incx);

/// y <- x.
template <typename T>
void copy(blas_int n, const T* x, blas_int incx, T* y, blas_int incy);

/// Euclidean norm, accumulated in double regardless of T's precision
/// (the numerically safe formulation reference BLAS uses).
template <typename T>
[[nodiscard]] double nrm2(blas_int n, const T* x, blas_int incx);

/// Unconjugated dot product (dotu): sum x_i * y_i.
template <typename T>
[[nodiscard]] T dotu(blas_int n, const T* x, blas_int incx, const T* y,
                     blas_int incy);

/// Conjugated dot product (dotc): sum conj(x_i) * y_i.
/// For real T this equals dotu.
template <typename T>
[[nodiscard]] T dotc(blas_int n, const T* x, blas_int incx, const T* y,
                     blas_int incy);

/// Sum of absolute values (asum); for complex, |re| + |im| per element as
/// in reference BLAS.
template <typename T>
[[nodiscard]] double asum(blas_int n, const T* x, blas_int incx);

/// Index of the element with the largest asum-style magnitude (iamax);
/// returns -1 for n <= 0.
template <typename T>
[[nodiscard]] blas_int iamax(blas_int n, const T* x, blas_int incx);

}  // namespace dcmesh::blas
