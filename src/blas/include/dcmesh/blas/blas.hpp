#pragma once
// blas.hpp — public level-3 BLAS API of minimkl.
//
// A from-scratch, cache-blocked, OpenMP-threaded implementation of the GEMM
// family with oneMKL-compatible *alternative compute modes* (see
// compute_mode.hpp).  Matrices are column-major with explicit leading
// dimensions, exactly as in (c)BLAS; all four standard precisions are
// provided.  Every call is timed and logged through the MKL_VERBOSE-style
// facility in verbose.hpp.
//
// Compute-mode semantics (matching the paper's Section III-B):
//  * FLOAT_TO_BF16 / BF16X2 / BF16X3: FP32 inputs of sgemm/cgemm are
//    decomposed into sums of 1/2/3 BF16 values; the BF16 component matrices
//    are multiplied with FP32 accumulation.  Double precision is unaffected.
//  * FLOAT_TO_TF32: FP32 inputs rounded to TF32; single product.
//  * COMPLEX_3M: cgemm/zgemm use the 3-multiplication complex algorithm.
//  * Real double precision (dgemm) always runs standard arithmetic.

#include <complex>
#include <cstdint>
#include <string_view>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/matrix.hpp"

namespace dcmesh::blas {

using blas_int = std::int64_t;

/// Operation applied to a GEMM operand.
enum class transpose : char {
  none = 'N',        ///< op(X) = X
  trans = 'T',       ///< op(X) = X^T
  conj_trans = 'C',  ///< op(X) = X^H (conjugate transpose)
};

/// C <- alpha*op(A)*op(B) + beta*C, single precision real.
/// Honours the active compute mode (BF16*/TF32 splits).
void sgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, float alpha, const float* a, blas_int lda,
           const float* b, blas_int ldb, float beta, float* c, blas_int ldc);

/// C <- alpha*op(A)*op(B) + beta*C, double precision real.
/// Always standard arithmetic (alternative modes apply to FP32 only).
void dgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, double alpha, const double* a, blas_int lda,
           const double* b, blas_int ldb, double beta, double* c,
           blas_int ldc);

/// C <- alpha*op(A)*op(B) + beta*C, single precision complex.
/// Honours COMPLEX_3M and the FP32 split modes (applied to the real
/// component products of the complex multiplication).
void cgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, std::complex<float> alpha, const std::complex<float>* a,
           blas_int lda, const std::complex<float>* b, blas_int ldb,
           std::complex<float> beta, std::complex<float>* c, blas_int ldc);

/// C <- alpha*op(A)*op(B) + beta*C, double precision complex.
/// Honours COMPLEX_3M; FP32 split modes do not apply.
void zgemm(transpose transa, transpose transb, blas_int m, blas_int n,
           blas_int k, std::complex<double> alpha,
           const std::complex<double>* a, blas_int lda,
           const std::complex<double>* b, blas_int ldb,
           std::complex<double> beta, std::complex<double>* c, blas_int ldc);

/// Generic view-based convenience overload; builds a gemm_call<T> descriptor
/// and dispatches through run() for T in {float, double, complex<float>,
/// complex<double>}.  C must have op(A).rows x op(B).cols shape.
/// `call_site` tags the call for the per-site precision policy engine (see
/// precision_policy.hpp); empty = untagged, exactly the legacy behaviour.
template <typename T>
void gemm(transpose transa, transpose transb, T alpha, const_matrix_view<T> a,
          const_matrix_view<T> b, T beta, matrix_view<T> c,
          std::string_view call_site = {});

/// Number of real floating-point operations a standard GEMM performs
/// (2mnk for real, 8mnk for complex 4M arithmetic).
[[nodiscard]] constexpr double gemm_flops(bool is_complex, blas_int m,
                                          blas_int n, blas_int k) noexcept {
  const double mnk = static_cast<double>(m) * static_cast<double>(n) *
                     static_cast<double>(k);
  return (is_complex ? 8.0 : 2.0) * mnk;
}

/// Minimum bytes a GEMM must move through memory (read A, B once, read and
/// write C once) for element size `elem_bytes`.
[[nodiscard]] constexpr double gemm_bytes(blas_int m, blas_int n, blas_int k,
                                          std::size_t elem_bytes) noexcept {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return (md * kd + kd * nd + 2.0 * md * nd) *
         static_cast<double>(elem_bytes);
}

/// Set the number of OpenMP threads minimkl may use (0 = library default).
void set_num_threads(int threads);

/// Threads minimkl will use for the next call.
[[nodiscard]] int get_num_threads();

namespace detail {

/// Straightforward triple-loop reference GEMM in the accumulator type
/// `Acc` (defaults to T's own precision).  Used by tests and by the split
/// paths' correctness baselines; O(mnk) with no blocking.
template <typename T, typename Acc = T>
void gemm_ref(transpose transa, transpose transb, blas_int m, blas_int n,
              blas_int k, T alpha, const T* a, blas_int lda, const T* b,
              blas_int ldb, T beta, T* c, blas_int ldc);

}  // namespace detail
}  // namespace dcmesh::blas
