#pragma once
// gemm_call.hpp — the descriptor-based level-3 entry point.
//
// Every GEMM in minimkl funnels through run(gemm_call<T>): the legacy
// sgemm/dgemm/cgemm/zgemm free functions, the view-based gemm<T>, the
// CBLAS compatibility layer, the batched API, and the rank-k updates are
// all thin shims that fill in a descriptor.  One choke point means the
// precision policy engine, the accuracy guard, and the verbose logger see
// every call with the same information — and future batched/offload paths
// have a single seam to hook.
//
// The descriptor adds two fields the positional signatures could never
// carry:
//  * call_site — a stable tag ("lfd/nlp_prop/overlap") identifying *which*
//    call this is, the key per-site policies dispatch on;
//  * mode — an optional per-call compute mode, the strongest programmatic
//    override in the resolution order (see precision_policy.hpp).
// Both default to "absent", in which case run() behaves exactly like the
// legacy entry points did.

#include <complex>
#include <optional>
#include <string_view>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/resil/abft.hpp"

namespace dcmesh::blas {

/// Descriptor of one C <- alpha*op(A)*op(B) + beta*C call.
/// T in {float, double, std::complex<float>, std::complex<double>}.
template <typename T>
struct gemm_call {
  transpose transa = transpose::none;
  transpose transb = transpose::none;
  blas_int m = 0;
  blas_int n = 0;
  blas_int k = 0;
  T alpha = T(1);
  const T* a = nullptr;
  blas_int lda = 1;
  const T* b = nullptr;
  blas_int ldb = 1;
  T beta = T(0);
  T* c = nullptr;
  blas_int ldc = 1;
  /// Stable identity of this call site (e.g. "lfd/remap_occ/overlap");
  /// empty = untagged (no per-site policy can apply).
  std::string_view call_site = {};
  /// Per-call compute mode; overrides every other resolution layer.
  std::optional<compute_mode> mode = std::nullopt;
  /// Explicit cache-blocking override (MC/NC rows/cols of C per block);
  /// 0 = resolve normally (tuned wisdom, else per-ISA defaults).  Values
  /// are legalized to the active tile quanta.  MC/NC only partition the
  /// output sweep — any legal override is bit-identical to the default —
  /// so this is a performance knob, never a numerics knob.  Used by the
  /// autotuner's blocking probes; available to expert callers.
  blas_int block_m = 0;
  blas_int block_n = 0;
  /// Per-call ABFT override, the strongest layer in the ABFT resolution
  /// order (call > policy rule's abft= flag > DCMESH_ABFT).  Used by the
  /// autotuner's overhead probes and by tests; ignored for complex types,
  /// where the checksum path is not implemented.
  std::optional<resil::abft_mode> abft = std::nullopt;
};

/// Execute one descriptor: resolve the effective compute mode for its
/// call_site, run the arithmetic (with the accuracy-guarded fallback when
/// a guarded policy rule matched), and log one verbose record carrying the
/// site, the resolved mode, and the guard verdict.
/// Throws std::invalid_argument on a malformed argument contract, exactly
/// like the legacy entry points.
template <typename T>
void run(const gemm_call<T>& call);

extern template void run<float>(const gemm_call<float>&);
extern template void run<double>(const gemm_call<double>&);
extern template void run<std::complex<float>>(
    const gemm_call<std::complex<float>>&);
extern template void run<std::complex<double>>(
    const gemm_call<std::complex<double>>&);

}  // namespace dcmesh::blas
