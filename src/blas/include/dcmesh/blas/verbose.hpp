#pragma once
// verbose.hpp — MKL_VERBOSE-style per-call logging.
//
// The paper's artifact methodology extracts per-call matrix dimensions and
// timings from MKL_VERBOSE=2 output (Tables VI, VII, Figure 3b).  minimkl
// reproduces that: when the MKL_VERBOSE environment variable is >= 1, each
// level-3 call prints one line in the MKL format; independent of printing,
// the most recent calls are kept in an in-process log that benches and
// tests can query programmatically.
//
// With the per-site precision policy engine each record additionally
// carries the call-site tag, where the resolved mode came from, and the
// accuracy-guard verdict.  The text line keeps the MKL_VERBOSE-compatible
// prefix unchanged (extra fields are appended after it), and a
// machine-readable JSONL sink mirrors every record to the file named by
// MKL_VERBOSE_JSON, one JSON object per line.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dcmesh/blas/autotune_hook.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/precision_policy.hpp"

namespace dcmesh::blas {

/// Accuracy-guard outcome of one call.
enum class fallback_verdict {
  none,      ///< Call was not guarded (no guard check ran).
  passed,    ///< Guard check ran; residual within tolerance at first try.
  promoted,  ///< Residual exceeded tolerance; call re-ran at higher mode.
};

/// Display name of a verdict: "none", "passed", "promoted".
[[nodiscard]] std::string_view name(fallback_verdict verdict) noexcept;

/// Health-sentinel outcome of one call (resilience subsystem; see
/// resil/health.hpp).
enum class health_verdict {
  none,         ///< Sentinel off — no finite scan ran.
  clean,        ///< Scan ran; result finite.
  detected,     ///< Non-finite result found; recovery exhausted the ladder.
  recovered,    ///< Non-finite result found; a promoted re-run fixed it.
};

/// Display name of a health verdict: "none", "clean", "detected",
/// "recovered".
[[nodiscard]] std::string_view name(health_verdict verdict) noexcept;

/// ABFT checksum outcome of one call (resil/abft.hpp).
enum class abft_verdict {
  none,       ///< ABFT off (or not applicable) for this call.
  checked,    ///< Checksums verified; residuals within τ.
  detected,   ///< Mismatch found; detect-only mode kept the result.
  corrected,  ///< Single element located and corrected in place.
  recovered,  ///< Ambiguous mismatch; a rebuilt re-run came back clean.
  failed,     ///< Escalation exhausted the ladder; result kept as-is.
};

/// Display name of an ABFT verdict: "none", "checked", "detected",
/// "corrected", "recovered", "failed".
[[nodiscard]] std::string_view name(abft_verdict verdict) noexcept;

/// One recorded level-3 call.
struct call_record {
  std::string routine;  ///< "SGEMM", "CGEMM", ...
  char transa = 'N';
  char transb = 'N';
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  std::int64_t lda = 0;
  std::int64_t ldb = 0;
  std::int64_t ldc = 0;
  double seconds = 0.0;        ///< Wall time of the call on this host.
  double flops = 0.0;          ///< Nominal standard-arithmetic flop count.
  compute_mode mode = compute_mode::standard;  ///< Final effective mode.

  // --- policy-engine fields (defaults reproduce pre-policy records) ---
  std::string call_site;       ///< Site tag; empty for untagged calls.
  /// Which resolution layer produced the mode (see precision_policy.hpp).
  policy_source source = policy_source::standard_default;
  /// Mode the policy resolved before any guard promotion (== mode unless
  /// the guard promoted the call).
  compute_mode requested_mode = compute_mode::standard;
  fallback_verdict fallback = fallback_verdict::none;
  double guard_residual = 0.0; ///< Sampled relative residual (guarded only).
  int attempts = 1;            ///< Arithmetic runs (1 = no re-run).
  /// How the `auto` mode chose this call's mode (none = not auto-resolved).
  auto_provenance tune = auto_provenance::none;

  // --- resilience fields (resil subsystem; defaults = feature off) ---
  /// Injected-fault description ("nan@(3,7)", "bitflip@(0,2):b12",
  /// "scale*1024"); empty when no fault was injected into this call.
  std::string fault;
  /// Finite-scan outcome (none unless DCMESH_HEALTH != off).
  health_verdict health = health_verdict::none;
  /// Checksum-guard outcome (none unless ABFT resolved != off).
  abft_verdict abft = abft_verdict::none;

  /// Render in the MKL_VERBOSE line format.  The prefix through "mode:" is
  /// byte-identical to the pre-policy format; " site:...", " src:...",
  /// " tune:..." and " fallback:..." are appended only when a site, an
  /// auto decision, or a guard is present.
  [[nodiscard]] std::string to_string() const;

  /// Render as one JSON object (the MKL_VERBOSE_JSON line format).
  [[nodiscard]] std::string to_json() const;
};

/// True when MKL_VERBOSE requests per-call lines (value >= 1).
[[nodiscard]] bool verbose_enabled();

/// Append a record to the in-process log (always) and print it when
/// verbose_enabled().  Thread-safe.
void record_call(call_record record);

/// Snapshot of the most recent calls, oldest first (bounded history).
[[nodiscard]] std::vector<call_record> recent_calls();

/// Total number of calls recorded since start/clear.
[[nodiscard]] std::uint64_t call_count();

/// Aggregate wall seconds across all recorded calls since start/clear.
[[nodiscard]] double total_call_seconds();

/// Reset the log and counters.
void clear_call_log();

/// Name of the controlling environment variable ("MKL_VERBOSE").
inline constexpr std::string_view kVerboseEnvVar = "MKL_VERBOSE";

/// Environment variable naming the JSONL sink file.  When set, every
/// record is appended to that file as one JSON line, independent of
/// MKL_VERBOSE.  The file is opened lazily and reopened when the value
/// changes; writes are line-buffered and thread-safe.
inline constexpr std::string_view kVerboseJsonEnvVar = "MKL_VERBOSE_JSON";

}  // namespace dcmesh::blas
