#pragma once
// verbose.hpp — MKL_VERBOSE-style per-call logging.
//
// The paper's artifact methodology extracts per-call matrix dimensions and
// timings from MKL_VERBOSE=2 output (Tables VI, VII, Figure 3b).  minimkl
// reproduces that: when the MKL_VERBOSE environment variable is >= 1, each
// level-3 call prints one line in the MKL format; independent of printing,
// the most recent calls are kept in an in-process log that benches and
// tests can query programmatically.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dcmesh/blas/compute_mode.hpp"

namespace dcmesh::blas {

/// One recorded level-3 call.
struct call_record {
  std::string routine;  ///< "SGEMM", "CGEMM", ...
  char transa = 'N';
  char transb = 'N';
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  std::int64_t lda = 0;
  std::int64_t ldb = 0;
  std::int64_t ldc = 0;
  double seconds = 0.0;        ///< Wall time of the call on this host.
  double flops = 0.0;          ///< Nominal standard-arithmetic flop count.
  compute_mode mode = compute_mode::standard;

  /// Render in the MKL_VERBOSE line format.
  [[nodiscard]] std::string to_string() const;
};

/// True when MKL_VERBOSE requests per-call lines (value >= 1).
[[nodiscard]] bool verbose_enabled();

/// Append a record to the in-process log (always) and print it when
/// verbose_enabled().  Thread-safe.
void record_call(call_record record);

/// Snapshot of the most recent calls, oldest first (bounded history).
[[nodiscard]] std::vector<call_record> recent_calls();

/// Total number of calls recorded since start/clear.
[[nodiscard]] std::uint64_t call_count();

/// Aggregate wall seconds across all recorded calls since start/clear.
[[nodiscard]] double total_call_seconds();

/// Reset the log and counters.
void clear_call_log();

/// Name of the controlling environment variable ("MKL_VERBOSE").
inline constexpr std::string_view kVerboseEnvVar = "MKL_VERBOSE";

}  // namespace dcmesh::blas
