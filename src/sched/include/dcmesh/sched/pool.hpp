#pragma once
// pool.hpp — persistent work-stealing thread pool (the QD step executor's
// worker team).
//
// One pool is spawned per process (or per test) and reused across every
// step: no per-GEMM or per-step thread creation, ever.  Each worker owns a
// deque; a worker pushes/pops its own deque at the back and steals from
// other workers (and the external submission queue) at the front.  The
// deques are mutex-guarded — at the granularity this repo schedules
// (panel packs, ic-block sweeps, whole BLAS calls) the lock is nanoseconds
// against microsecond tasks, and the straightforward locking is what keeps
// the pool trivially ThreadSanitizer-clean.
//
// Two execution services sit on top of the raw task queue:
//  - parallel_for(n, body): the *injected worker team* for the blocked
//    GEMM core and the stencil kernels.  Collaborative: the caller (pool
//    worker or external thread) executes chunks alongside idle workers,
//    so intra-GEMM parallelism and inter-node graph parallelism share the
//    same threads instead of oversubscribing.  Chunk -> output mapping is
//    index-based and outputs are disjoint, so results are bit-identical
//    to a serial sweep no matter which thread runs which chunk.
//  - submit(fn) -> job: fire-and-forget with a waitable handle (used by
//    the driver's double-buffered checkpoint sealer).
//
// quiesce() blocks until every submitted task has retired — the rollback /
// replay quiescence point for the resilience subsystem.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dcmesh::sched {

/// Waitable handle for one submitted task.  Copyable; wait() may be called
/// from any thread, repeatedly.  A default-constructed job is already done.
class job {
 public:
  job() = default;

  /// Block until the task has run; rethrows the task's exception (once —
  /// later waits return normally).
  void wait();

  /// True when the task has retired (exception included).
  [[nodiscard]] bool done() const;

  /// True when this job refers to a real submitted task.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class thread_pool;
  struct state {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
  };
  std::shared_ptr<state> state_;
};

/// Persistent work-stealing pool.  Thread-safe; all services may be used
/// concurrently from any mix of external threads and pool workers.
class thread_pool {
 public:
  /// Spawn `workers` threads (clamped to [1, kMaxWorkers]).
  explicit thread_pool(int workers);
  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Drains all queues, then joins the workers.
  ~thread_pool();

  [[nodiscard]] int worker_count() const noexcept { return count_; }

  /// Enqueue `fn` for asynchronous execution and return a waitable handle.
  /// Called from a pool worker, the task lands on that worker's own deque
  /// (depth-first, cache-warm); externally it lands on the injection queue.
  job submit(std::function<void()> fn);

  /// Collaborative parallel sweep of body(0..n-1).  The caller executes
  /// chunks too, so this never deadlocks — even from a pool worker while
  /// every other worker is busy, the caller simply runs the whole range
  /// itself.  Rethrows the first chunk exception after the sweep drains.
  /// Chunks are claimed by atomic index (schedule(dynamic) semantics);
  /// body(i) must write only to index-i-owned state.
  void parallel_for(long n, const std::function<void(long)>& body);

  /// Block until no task is queued or in flight.  New submissions made
  /// while quiescing extend the wait (callers stop producing first: the
  /// driver quiesces only after its step graphs have joined).
  void quiesce();

  /// Worker index of the calling thread in THIS pool, -1 for foreigners.
  [[nodiscard]] int current_worker_id() const noexcept;

  // --- introspection (tests, metrics) ---------------------------------
  /// Tasks executed since construction (parallel_for chunk runners count
  /// once per runner, not per index).
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  /// Tasks a worker obtained from another worker's deque or the injection
  /// queue — the work-stealing traffic.
  [[nodiscard]] std::uint64_t steal_count() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Cumulative nanoseconds tasks spent queued before a worker picked
  /// them up (the `queue_wait` trace annotation, pool-wide).
  [[nodiscard]] std::uint64_t queue_wait_ns() const noexcept {
    return queue_wait_ns_.load(std::memory_order_relaxed);
  }
  /// Monotonic ids of the OS threads that ever executed a task; size ==
  /// worker_count() forever after warmup proves zero thread churn.
  [[nodiscard]] std::vector<std::uint64_t> worker_thread_ids() const;

  static constexpr int kMaxWorkers = 256;

 private:
  struct task {
    std::function<void()> fn;
    std::shared_ptr<job::state> state;  ///< null for untracked tasks.
    std::uint64_t enqueue_ns = 0;
  };
  struct worker_queue {
    std::mutex mutex;
    std::deque<task> deque;  // guarded by mutex
  };

  void worker_loop(int id);
  void run_task(task&& t);
  /// Pop for worker `id` (own back, then steal fronts).  Returns false
  /// when nothing is available anywhere.
  bool try_pop(int id, task& out);
  void enqueue(task t);

  // Finalized in the constructor BEFORE any thread is spawned: workers
  // read the count while the constructor is still growing `workers_`, so
  // sizing off that vector would race.
  int count_ = 0;
  std::vector<std::unique_ptr<worker_queue>> queues_;  // one per worker
  worker_queue injection_;                             // external submits
  std::vector<std::thread> workers_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;

  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  std::atomic<std::uint64_t> pending_{0};  ///< queued + running tasks

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> queue_wait_ns_{0};

  mutable std::mutex ids_mutex_;
  std::vector<std::uint64_t> thread_ids_;  // guarded by ids_mutex_
};

}  // namespace dcmesh::sched
