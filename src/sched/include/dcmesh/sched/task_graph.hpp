#pragma once
// task_graph.hpp — a QD step as a dependency DAG.
//
// The engine builds one small graph per step (a dozen-odd nodes: the 9
// tagged BLAS stages, the mesh kernels, the remap_occ moments, the B-panel
// prepack for the next call) and runs it either serially — insertion
// order, calling thread, the bit-exactness oracle — or on the persistent
// pool, where any node whose dependencies have retired may execute on any
// worker while the caller helps.
//
// Determinism contract: every node writes only outputs no concurrently
// runnable node touches, and each edge orders a writer before its
// readers.  Under that contract the pooled schedule is bit-identical to
// the serial one — same inputs reach every node, kernels are themselves
// deterministic — which the golden-trajectory lock asserts end to end.
//
// Failure model: a throwing node marks the graph failed; its transitive
// dependents are skipped (never started), the remaining runnable nodes
// drain, and run() rethrows the first exception.  The pool is untouched
// and immediately reusable — a failed step is the resilience layer's
// problem (rollback/replay), not the scheduler's.
//
// Graphs are acyclic by construction: a node may only depend on
// already-added nodes.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace dcmesh::sched {

class thread_pool;

class task_graph {
 public:
  using node_id = std::size_t;

  explicit task_graph(std::string name = "step");

  /// Add a node depending on `deps` (all must be ids returned earlier by
  /// this graph; throws std::invalid_argument otherwise).  Insertion
  /// order is the serial execution order.
  node_id add(std::string name, std::function<void()> fn,
              std::initializer_list<node_id> deps = {});
  node_id add(std::string name, std::function<void()> fn,
              const std::vector<node_id>& deps);

  /// Execute the graph.  pool == nullptr runs every node on the calling
  /// thread in insertion order (dependents of a failed node skipped);
  /// otherwise ready nodes are submitted to the pool and the caller
  /// collaborates.  Rethrows the first node exception after all runnable
  /// nodes have drained.  One-shot: rerunning a graph throws.
  void run(thread_pool* pool);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  /// True when the last run() saw a node throw.
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// Nodes skipped in the last run() because an ancestor failed.
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }

 private:
  struct node {
    std::string name;
    std::function<void()> fn;
    std::vector<node_id> children;
    int dep_count = 0;
  };

  void run_serial();
  void run_pooled(thread_pool& pool);

  std::string name_;
  std::vector<node> nodes_;
  bool ran_ = false;
  bool failed_ = false;
  std::size_t skipped_ = 0;
};

}  // namespace dcmesh::sched
