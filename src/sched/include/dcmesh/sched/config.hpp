#pragma once
// config.hpp — DCMESH_SCHED parsing and the process-wide scheduler state.
//
// Grammar (case-insensitive, surrounding whitespace ignored):
//   serial      step phases run in insertion order on the calling thread
//               (the determinism oracle; the default)
//   pool        persistent work-stealing pool, hardware_concurrency workers
//   pool:N      same with exactly N workers, 1 <= N <= 256
//
// Malformed values warn ONCE on stderr and fall back to serial — the
// scheduler selector never throws and never aborts a run (same contract
// as DCMESH_KERNEL_ISA and DCMESH_FAULT_PLAN).
//
// The pool is spawned lazily on first use and then reused for the whole
// process: every step graph, every injected GEMM worker team, and the
// checkpoint sealer all share this one set of threads.

#include <functional>
#include <string>
#include <string_view>

namespace dcmesh::sched {

class thread_pool;

inline constexpr const char* kSchedEnvVar = "DCMESH_SCHED";

enum class sched_mode { serial, pool };

struct sched_config {
  sched_mode mode = sched_mode::serial;
  int workers = 0;  ///< pool size; 0 = hardware_concurrency
};

/// Pure parser (no env access, no warning) — exposed for tests.
/// On malformed input returns the serial default and sets *ok = false.
sched_config parse_sched(std::string_view text, bool* ok = nullptr);

/// Scheduler selected by DCMESH_SCHED (or configure()); cached after the
/// first call.  Malformed env values warn once and select serial.
sched_mode active_mode();

/// The process-wide pool, spawned on first call; nullptr in serial mode.
thread_pool* active_pool();

/// Programmatic override (tests, benches): replaces the cached selection
/// and — if the pool size changes — quiesces and respawns the pool.
/// workers == 0 means hardware_concurrency.
void configure(sched_mode mode, int workers = 0);

/// Drop the cached selection so the next active_mode() re-reads the env
/// (test hygiene; also joins and destroys any live pool).
void reset_for_testing();

/// Block until the active pool (if any) has retired every task — the
/// rollback/replay quiescence point.  No-op in serial mode.
void quiesce_active_pool();

/// Human-readable form of the active selection, e.g. "serial", "pool:8"
/// (for the metrics `sched=` section).
std::string describe_active();

/// The injected worker team for compute kernels (blocked GEMM packing
/// and ic-block sweeps, stencil column loops).  Pool mode: collaborative
/// sweep on the shared pool (caller participates; never oversubscribes).
/// Otherwise: OpenMP parallel-for when compiled in, else a plain loop.
/// `dynamic_chunks` selects schedule(dynamic) in the OpenMP fallback;
/// the pool sweep is always dynamic (atomic index claim).  body(i) must
/// write only index-i-owned state; outputs are keyed by index, not by
/// thread, so results are bit-identical across team shapes.
void team_parallel_for(long n, bool dynamic_chunks,
                       const std::function<void(long)>& body);

}  // namespace dcmesh::sched
