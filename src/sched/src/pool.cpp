#include "dcmesh/sched/pool.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <utility>

namespace dcmesh::sched {

namespace {

// Which pool (if any) the calling thread is a worker of.  A thread is a
// worker of at most one pool for its whole lifetime, so a flat pair is
// enough — no map needed.
thread_local const thread_pool* tl_pool = nullptr;
thread_local int tl_worker_id = -1;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------- job --

void job::wait() {
  if (!state_) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error) {
    // Rethrow once; later waits observe a clean, completed job.
    std::exception_ptr error = std::exchange(state_->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool job::done() const {
  if (!state_) return true;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

// -------------------------------------------------------- thread_pool --

thread_pool::thread_pool(int workers) {
  count_ = workers < 1 ? 1 : (workers > kMaxWorkers ? kMaxWorkers : workers);
  queues_.reserve(static_cast<std::size_t>(count_));
  for (int i = 0; i < count_; ++i) {
    queues_.push_back(std::make_unique<worker_queue>());
  }
  workers_.reserve(static_cast<std::size_t>(count_));
  for (int i = 0; i < count_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

thread_pool::~thread_pool() {
  quiesce();
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

job thread_pool::submit(std::function<void()> fn) {
  job handle;
  handle.state_ = std::make_shared<job::state>();
  enqueue(task{std::move(fn), handle.state_, 0});
  return handle;
}

void thread_pool::enqueue(task t) {
  t.enqueue_ns = now_ns();
  pending_.fetch_add(1, std::memory_order_acq_rel);
  worker_queue* q = &injection_;
  if (tl_pool == this) {
    // A worker spawning work keeps it on its own deque (depth-first,
    // cache-warm); idle workers steal from the front.
    q = queues_[static_cast<std::size_t>(tl_worker_id)].get();
  }
  {
    std::lock_guard<std::mutex> lock(q->mutex);
    q->deque.push_back(std::move(t));
  }
  // Pair the notify with the sleep mutex so a worker between its failed
  // try_pop and its wait cannot miss the wake-up.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_one();
}

bool thread_pool::try_pop(int id, task& out) {
  // 1. Own deque, back (LIFO: most recently spawned, cache-warm).
  {
    worker_queue& own = *queues_[static_cast<std::size_t>(id)];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      out = std::move(own.deque.back());
      own.deque.pop_back();
      return true;
    }
  }
  // 2. Injection queue, front (FIFO: external submission order).
  {
    std::lock_guard<std::mutex> lock(injection_.mutex);
    if (!injection_.deque.empty()) {
      out = std::move(injection_.deque.front());
      injection_.deque.pop_front();
      return true;
    }
  }
  // 3. Steal from the other workers, front (oldest: largest remaining
  //    subtree under recursive decomposition).
  const int n = worker_count();
  for (int hop = 1; hop < n; ++hop) {
    worker_queue& victim = *queues_[static_cast<std::size_t>((id + hop) % n)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      out = std::move(victim.deque.front());
      victim.deque.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void thread_pool::run_task(task&& t) {
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  queue_wait_ns_.fetch_add(now_ns() - t.enqueue_ns, std::memory_order_relaxed);
  if (t.state) {
    try {
      t.fn();
    } catch (...) {
      t.state->error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(t.state->mutex);
      t.state->done = true;
    }
    t.state->cv.notify_all();
  } else {
    // Untracked tasks (parallel_for runners, graph node stubs) capture
    // their exceptions into their own shared state; a throw here is a
    // contract violation and terminates loudly rather than vanishing.
    t.fn();
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { std::lock_guard<std::mutex> lock(quiesce_mutex_); }
    quiesce_cv_.notify_all();
  }
}

void thread_pool::worker_loop(int id) {
  tl_pool = this;
  tl_worker_id = id;
  {
    std::lock_guard<std::mutex> lock(ids_mutex_);
    thread_ids_.push_back(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
  }
  task t;
  while (true) {
    if (try_pop(id, t)) {
      run_task(std::move(t));
      t = task{};
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stop_.load(std::memory_order_acquire)) return;
    // Re-probe under the sleep mutex via a timed wait: enqueue()'s
    // notify is paired with this mutex, so a wake-up cannot be missed;
    // the timeout is belt-and-braces against pathological lost wakes.
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void thread_pool::parallel_for(long n, const std::function<void(long)>& body) {
  if (n <= 0) return;
  if (n == 1) {
    body(0);
    return;
  }

  // Shared sweep state.  Held by shared_ptr so runner tasks that wake up
  // after every index has been claimed (and the caller has returned) can
  // still touch the counters safely.  `body` is only dereferenced for a
  // claimed index, and the caller blocks until all n indices complete,
  // so the reference never dangles.
  struct sweep {
    std::atomic<long> next{0};
    std::atomic<long> completed{0};
    long n = 0;
    const std::function<void(long)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // guarded by mutex
  };
  auto s = std::make_shared<sweep>();
  s->n = n;
  s->body = &body;

  auto run_chunks = [s] {
    long i;
    while ((i = s->next.fetch_add(1, std::memory_order_relaxed)) < s->n) {
      try {
        (*s->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mutex);
        if (!s->error) s->error = std::current_exception();
      }
      if (s->completed.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        { std::lock_guard<std::mutex> lock(s->mutex); }
        s->cv.notify_all();
      }
    }
  };

  // One runner per worker (bounded by the trip count); the caller is the
  // +1th participant and starts immediately.
  const long runners = std::min<long>(worker_count(), n - 1);
  for (long r = 0; r < runners; ++r) {
    enqueue(task{run_chunks, nullptr, 0});
  }
  run_chunks();

  if (s->completed.load(std::memory_order_acquire) < n) {
    std::unique_lock<std::mutex> lock(s->mutex);
    s->cv.wait(lock, [&] {
      return s->completed.load(std::memory_order_acquire) >= s->n;
    });
  }
  // All indices retired; the acquire loads above order the error write.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(s->mutex);
    error = std::exchange(s->error, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void thread_pool::quiesce() {
  if (pending_.load(std::memory_order_acquire) == 0) return;
  // A pool worker cannot block on quiesce (it would wait for itself);
  // instead it helps drain.
  if (tl_pool == this) {
    task t;
    while (pending_.load(std::memory_order_acquire) != 0) {
      if (try_pop(tl_worker_id, t)) {
        run_task(std::move(t));
        t = task{};
      } else {
        std::this_thread::yield();
      }
    }
    return;
  }
  std::unique_lock<std::mutex> lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

int thread_pool::current_worker_id() const noexcept {
  return tl_pool == this ? tl_worker_id : -1;
}

std::vector<std::uint64_t> thread_pool::worker_thread_ids() const {
  std::lock_guard<std::mutex> lock(ids_mutex_);
  return thread_ids_;
}

}  // namespace dcmesh::sched
