#include "dcmesh/sched/task_graph.hpp"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "dcmesh/sched/pool.hpp"
#include "dcmesh/trace/metrics.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::sched {

namespace {

// Shared state of one pooled graph execution.  Helper stubs submitted to
// the pool hold it by shared_ptr: a stale stub that wakes after run()
// already returned finds the ready queue empty and retires touching
// nothing but this block — never the graph or the caller's frame.
struct graph_run {
  struct node_view {
    const std::string* name = nullptr;
    const std::function<void()>* fn = nullptr;
    const std::vector<std::size_t>* children = nullptr;
  };

  std::string graph_name;
  std::vector<node_view> nodes;
  thread_pool* pool = nullptr;
  std::size_t total = 0;

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> deps;       // remaining unmet deps, guarded by mutex
  std::vector<char> poisoned;  // an ancestor failed/skipped
  std::deque<std::size_t> ready;
  std::size_t done = 0;  // executed + skipped
  std::size_t executed = 0;
  std::size_t skipped = 0;
  std::exception_ptr error;
};

// Resolve one finished (ok) or failed/skipped (!ok) node: decrement its
// children, collect the newly runnable ones, cascade skips through
// poisoned subtrees.  Caller holds s.mutex.
void resolve_locked(graph_run& s, std::size_t id, bool ok,
                    std::vector<std::size_t>& newly_ready) {
  std::deque<std::pair<std::size_t, bool>> work;
  work.emplace_back(id, ok);
  while (!work.empty()) {
    auto [cur, cur_ok] = work.front();
    work.pop_front();
    for (std::size_t child : *s.nodes[cur].children) {
      if (!cur_ok) s.poisoned[child] = 1;
      if (--s.deps[child] == 0) {
        if (s.poisoned[child]) {
          ++s.skipped;
          ++s.done;
          work.emplace_back(child, false);
        } else {
          newly_ready.push_back(child);
        }
      }
    }
  }
}

// Execute one ready node if any (node body runs outside the mutex);
// false when the ready queue was empty.
bool execute_one(const std::shared_ptr<graph_run>& s) {
  std::size_t id;
  {
    std::lock_guard<std::mutex> lock(s->mutex);
    if (s->ready.empty()) return false;
    id = s->ready.front();
    s->ready.pop_front();
  }
  const graph_run::node_view& n = s->nodes[id];
  bool ok = true;
  {
    trace::span sp(s->graph_name + "/" + *n.name, "sched");
    sp.arg("worker", std::int64_t{s->pool->current_worker_id()});
    try {
      (*n.fn)();
    } catch (...) {
      ok = false;
      sp.arg("failed", std::int64_t{1});
      std::lock_guard<std::mutex> lock(s->mutex);
      if (!s->error) s->error = std::current_exception();
    }
  }
  std::vector<std::size_t> newly_ready;
  bool all_done = false;
  {
    std::lock_guard<std::mutex> lock(s->mutex);
    ++s->done;
    ++s->executed;
    resolve_locked(*s, id, ok, newly_ready);
    for (std::size_t r : newly_ready) s->ready.push_back(r);
    all_done = s->done == s->total;
  }
  // The executing thread takes the first newly ready node itself on its
  // next loop; extra ones get a helper stub each so idle workers join.
  for (std::size_t i = 1; i < newly_ready.size(); ++i) {
    s->pool->submit([s] { (void)execute_one(s); });
  }
  if (!newly_ready.empty() || all_done) s->cv.notify_all();
  return true;
}

}  // namespace

task_graph::task_graph(std::string name) : name_(std::move(name)) {}

task_graph::node_id task_graph::add(std::string name, std::function<void()> fn,
                                    std::initializer_list<node_id> deps) {
  return add(std::move(name), std::move(fn),
             std::vector<node_id>(deps.begin(), deps.end()));
}

task_graph::node_id task_graph::add(std::string name, std::function<void()> fn,
                                    const std::vector<node_id>& deps) {
  const node_id id = nodes_.size();
  for (node_id dep : deps) {
    if (dep >= id) {
      throw std::invalid_argument("task_graph: node \"" + name +
                                  "\" depends on a not-yet-added node");
    }
  }
  node n;
  n.name = std::move(name);
  n.fn = std::move(fn);
  n.dep_count = static_cast<int>(deps.size());
  nodes_.push_back(std::move(n));
  for (node_id dep : deps) nodes_[dep].children.push_back(id);
  return id;
}

void task_graph::run(thread_pool* pool) {
  if (ran_) throw std::logic_error("task_graph: graphs are one-shot");
  ran_ = true;
  failed_ = false;
  skipped_ = 0;
  if (nodes_.empty()) return;
  if (pool == nullptr || nodes_.size() == 1) {
    run_serial();
  } else {
    run_pooled(*pool);
  }
}

void task_graph::run_serial() {
  // Insertion order IS a topological order (deps precede their node by
  // construction), so one pass suffices.  This path is the oracle the
  // pooled schedule is locked against — keep it boring.
  std::vector<char> ok(nodes_.size(), 0);
  std::exception_ptr first_error;
  std::size_t executed = 0;
  for (node_id id = 0; id < nodes_.size(); ++id) {
    node& n = nodes_[id];
    bool runnable = true;
    for (node_id parent = 0; parent < id && runnable; ++parent) {
      for (node_id child : nodes_[parent].children) {
        if (child == id && !ok[parent]) {
          runnable = false;
          break;
        }
      }
    }
    if (!runnable) {
      ++skipped_;
      continue;
    }
    trace::span sp(name_ + "/" + n.name, "sched");
    sp.arg("worker", std::int64_t{-1});
    try {
      n.fn();
      ok[id] = 1;
      ++executed;
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      failed_ = true;
      sp.arg("failed", std::int64_t{1});
    }
  }
  trace::record_sched_counter("graphs");
  trace::record_sched_counter("nodes", executed);
  if (skipped_ != 0) trace::record_sched_counter("nodes_skipped", skipped_);
  if (first_error) std::rethrow_exception(first_error);
}

void task_graph::run_pooled(thread_pool& pool) {
  auto s = std::make_shared<graph_run>();
  s->graph_name = name_;
  s->pool = &pool;
  s->total = nodes_.size();
  s->nodes.reserve(nodes_.size());
  s->deps.reserve(nodes_.size());
  for (const node& n : nodes_) {
    s->nodes.push_back(graph_run::node_view{&n.name, &n.fn, &n.children});
    s->deps.push_back(n.dep_count);
  }
  s->poisoned.assign(nodes_.size(), 0);

  const std::uint64_t steals_before = pool.steal_count();
  const std::uint64_t wait_before = pool.queue_wait_ns();

  // Seed the initially runnable nodes (insertion order) and hand every
  // seed beyond the caller's first pick to a helper stub.
  std::vector<node_id> seeds;
  for (node_id id = 0; id < nodes_.size(); ++id) {
    if (s->deps[id] == 0) seeds.push_back(id);
  }
  {
    std::lock_guard<std::mutex> lock(s->mutex);
    for (node_id id : seeds) s->ready.push_back(id);
  }
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    pool.submit([s] { (void)execute_one(s); });
  }

  // The caller collaborates until the graph drains.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(s->mutex);
      if (s->done == s->total) break;
    }
    if (execute_one(s)) continue;
    std::unique_lock<std::mutex> lock(s->mutex);
    s->cv.wait(lock,
               [&] { return s->done == s->total || !s->ready.empty(); });
    if (s->done == s->total) break;
  }

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(s->mutex);
    failed_ = s->error != nullptr;
    skipped_ = s->skipped;
    error = std::exchange(s->error, nullptr);
    trace::record_sched_counter("graphs");
    trace::record_sched_counter("nodes", s->executed);
    if (s->skipped != 0) {
      trace::record_sched_counter("nodes_skipped", s->skipped);
    }
  }
  trace::record_sched_counter("steals", pool.steal_count() - steals_before);
  trace::record_sched_counter("queue_wait_ns",
                              pool.queue_wait_ns() - wait_before);
  if (error) std::rethrow_exception(error);
}

}  // namespace dcmesh::sched
