#include "dcmesh/sched/config.hpp"

#include <atomic>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "dcmesh/common/env.hpp"
#include "dcmesh/sched/pool.hpp"

namespace dcmesh::sched {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int default_worker_count() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<int>(hw);
}

// Process-wide scheduler state.  All mutation goes through g_mutex; the
// resolved mode is mirrored into an atomic so the serial fast path in
// team_parallel_for costs one relaxed load.
struct sched_state {
  std::mutex mutex;
  bool resolved = false;
  sched_config config;
  std::unique_ptr<thread_pool> pool;  // spawned lazily, persistent
};

sched_state& state() {
  static sched_state s;
  return s;
}

std::atomic<int> g_mode_cache{-1};  // -1 unresolved, else (int)sched_mode

void warn_malformed_once(const std::string& text) {
  static std::once_flag flag;
  std::call_once(flag, [&] {
    std::fprintf(stderr,
                 "dcmesh: malformed %s value \"%s\"; expected serial or "
                 "pool[:N] (1<=N<=%d); using serial\n",
                 kSchedEnvVar, text.c_str(), thread_pool::kMaxWorkers);
  });
}

// Resolve from the environment; caller holds state().mutex.
void resolve_locked(sched_state& s) {
  if (s.resolved) return;
  sched_config cfg;
  if (std::optional<std::string> raw = dcmesh::env_get(kSchedEnvVar)) {
    bool ok = false;
    cfg = parse_sched(*raw, &ok);
    if (!ok) warn_malformed_once(*raw);
  }
  s.config = cfg;
  s.resolved = true;
  g_mode_cache.store(static_cast<int>(cfg.mode), std::memory_order_release);
}

thread_pool* pool_locked(sched_state& s) {
  resolve_locked(s);
  if (s.config.mode != sched_mode::pool) return nullptr;
  if (!s.pool) {
    int workers =
        s.config.workers > 0 ? s.config.workers : default_worker_count();
    s.pool = std::make_unique<thread_pool>(workers);
  }
  return s.pool.get();
}

}  // namespace

sched_config parse_sched(std::string_view text, bool* ok) {
  if (ok) *ok = true;
  sched_config cfg;
  std::string_view t = trim(text);
  if (t.empty() || iequals(t, "serial")) return cfg;
  if (iequals(t, "pool")) {
    cfg.mode = sched_mode::pool;
    return cfg;
  }
  constexpr std::string_view kPrefix = "pool:";
  if (t.size() > kPrefix.size() &&
      iequals(t.substr(0, kPrefix.size()), kPrefix)) {
    std::string_view num = t.substr(kPrefix.size());
    int n = 0;
    auto [end, ec] = std::from_chars(num.data(), num.data() + num.size(), n);
    if (ec == std::errc{} && end == num.data() + num.size() && n >= 1 &&
        n <= thread_pool::kMaxWorkers) {
      cfg.mode = sched_mode::pool;
      cfg.workers = n;
      return cfg;
    }
  }
  if (ok) *ok = false;
  return sched_config{};  // serial fallback, never throw
}

sched_mode active_mode() {
  int cached = g_mode_cache.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<sched_mode>(cached);
  sched_state& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  resolve_locked(s);
  return s.config.mode;
}

thread_pool* active_pool() {
  if (active_mode() != sched_mode::pool) return nullptr;
  sched_state& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return pool_locked(s);
}

void configure(sched_mode mode, int workers) {
  sched_state& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const int resolved_workers =
      mode == sched_mode::pool
          ? (workers > 0 ? workers : default_worker_count())
          : 0;
  if (s.pool) {
    // Keep a matching pool alive (persistence is the whole point); only
    // a size change or a switch to serial tears it down.
    if (mode != sched_mode::pool ||
        s.pool->worker_count() != resolved_workers) {
      s.pool->quiesce();
      s.pool.reset();
    }
  }
  s.config.mode = mode;
  s.config.workers = workers;
  s.resolved = true;
  g_mode_cache.store(static_cast<int>(mode), std::memory_order_release);
}

void reset_for_testing() {
  sched_state& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.pool) {
    s.pool->quiesce();
    s.pool.reset();
  }
  s.resolved = false;
  s.config = sched_config{};
  g_mode_cache.store(-1, std::memory_order_release);
}

void quiesce_active_pool() {
  sched_state& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.pool) s.pool->quiesce();
}

std::string describe_active() {
  sched_state& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  resolve_locked(s);
  if (s.config.mode == sched_mode::serial) return "serial";
  int workers = s.pool ? s.pool->worker_count()
                       : (s.config.workers > 0 ? s.config.workers
                                               : default_worker_count());
  return "pool:" + std::to_string(workers);
}

void team_parallel_for(long n, bool dynamic_chunks,
                       const std::function<void(long)>& body) {
  if (n <= 0) return;
  if (g_mode_cache.load(std::memory_order_relaxed) ==
      static_cast<int>(sched_mode::pool)) {
    if (thread_pool* pool = active_pool()) {
      pool->parallel_for(n, body);
      return;
    }
  } else if (g_mode_cache.load(std::memory_order_relaxed) < 0) {
    // First touch resolves the env; recurse onto the resolved path.
    (void)active_mode();
    team_parallel_for(n, dynamic_chunks, body);
    return;
  }
#if defined(DCMESH_HAVE_OPENMP)
  if (dynamic_chunks) {
#pragma omp parallel for schedule(dynamic)
    for (long i = 0; i < n; ++i) body(i);
  } else {
#pragma omp parallel for schedule(static)
    for (long i = 0; i < n; ++i) body(i);
  }
#else
  (void)dynamic_chunks;
  for (long i = 0; i < n; ++i) body(i);
#endif
}

}  // namespace dcmesh::sched
