#pragma once
// file_lock.hpp — RAII advisory file lock (flock(2)).
//
// The campaign farm runs N worker processes against one wisdom store and
// one campaign manifest; both are JSONL files rewritten whole (see
// atomic_file.hpp).  Atomic rename makes each individual rewrite safe,
// but read-modify-write sequences still race: two writers that both load
// the old file and rewrite it lose one writer's additions.  file_lock
// serializes those critical sections across processes with a blocking
// exclusive flock on a sidecar ".lock" file — a sidecar, not the data
// file itself, because the atomic rename replaces the data file's inode
// and would silently detach any lock held on it.
//
// Locking is best-effort by design: when the lock file cannot be created
// (read-only or missing directory), held() is false and the caller
// proceeds unlocked — the same degraded-but-never-fatal behavior the
// wisdom writer already has for unwritable cache paths.  flock is
// per-open-file-description, so two file_lock objects on the same path
// exclude each other even inside one process (each opens its own fd).

#include <string>

namespace dcmesh {

class file_lock {
 public:
  /// Acquire a blocking exclusive lock on `path` + ".lock".  Never
  /// throws; on any failure the object simply reports held() == false.
  explicit file_lock(const std::string& path);

  /// Release the lock (the sidecar file is left in place: removing it
  /// would race with a process that just opened it).
  ~file_lock();

  file_lock(const file_lock&) = delete;
  file_lock& operator=(const file_lock&) = delete;

  /// True when the exclusive lock is actually held.
  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }

  /// Suffix appended to the protected path to name the sidecar.
  static constexpr const char* kSuffix = ".lock";

 private:
  int fd_ = -1;
};

}  // namespace dcmesh
