#pragma once
// table.hpp — fixed-width text table writer for the bench harness.
//
// Every bench binary prints rows in the same layout the paper's tables and
// figure series use, so output diffs cleanly into EXPERIMENTS.md.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace dcmesh {

/// Accumulates rows of string cells and prints them with aligned columns.
class text_table {
 public:
  /// Start a table with the given column headers.
  explicit text_table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Append one row; missing trailing cells render empty.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Render with two-space gutters and a dashed rule under the header.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    const auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        os << std::left << std::setw(static_cast<int>(width[c])) << cell;
        if (c + 1 < width.size()) os << "  ";
      }
      os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) {
      total += width[c] + (c + 1 < width.size() ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` significant digits (default 4).
[[nodiscard]] inline std::string fmt(double v, int prec = 4) {
  std::ostringstream os;
  os << std::setprecision(prec) << v;
  return os.str();
}

/// Format with fixed decimals, e.g. fmt_fixed(1.3456, 2) -> "1.35".
[[nodiscard]] inline std::string fmt_fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

/// Format in scientific notation, e.g. fmt_sci(1.2e-5, 2) -> "1.20e-05".
[[nodiscard]] inline std::string fmt_sci(double v, int decimals = 2) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(decimals) << v;
  return os.str();
}

}  // namespace dcmesh
