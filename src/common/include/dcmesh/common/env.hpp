#pragma once
// env.hpp — environment-variable access helpers.
//
// The whole point of the paper's methodology is that precision modes are
// switched with *no source changes*, only environment variables
// (MKL_BLAS_COMPUTE_MODE, MKL_VERBOSE, KMP_BLOCKTIME).  These helpers give
// the library a single, testable seam for reading and normalising them.

#include <optional>
#include <string>
#include <string_view>

namespace dcmesh {

/// Read an environment variable; nullopt when unset or empty.
[[nodiscard]] std::optional<std::string> env_get(std::string_view name);

/// Read an integer environment variable; `fallback` when unset/unparsable.
[[nodiscard]] long env_get_int(std::string_view name, long fallback);

/// Set (or overwrite) an environment variable in this process.  Used by
/// tests and examples to exercise the env-var control path.
void env_set(std::string_view name, std::string_view value);

/// Remove an environment variable from this process.
void env_unset(std::string_view name);

/// ASCII upper-case copy (env values are matched case-insensitively, as
/// oneMKL does for MKL_BLAS_COMPUTE_MODE).
[[nodiscard]] std::string to_upper(std::string_view s);

/// ASCII lower-case copy (deck keys are case-insensitive; the canonical
/// spelling is lower).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

}  // namespace dcmesh
