#pragma once
// atomic_file.hpp — crash-safe whole-file replacement.
//
// Checkpoints and the autotuner wisdom cache are the artifacts a 2-day
// campaign restarts from; a kill mid-write must never leave a truncated
// file where a good one used to be.  atomic_write_file() streams into a
// unique temp file in the same directory, fsyncs it, then atomically
// rename(2)s it over the destination — readers see either the complete
// old content or the complete new content, never a prefix.

#include <functional>
#include <iosfwd>
#include <string>

namespace dcmesh {

/// Write `path` atomically: `write` streams the content into a temp file
/// beside `path`; on success (write returned true and the stream is good)
/// the temp file is fsynced and renamed over `path`.  On any failure the
/// temp file is removed and the previous `path` content is untouched.
/// Returns whether the replacement happened.  Exceptions thrown by
/// `write` clean up the temp file and propagate.
[[nodiscard]] bool atomic_write_file(
    const std::string& path,
    const std::function<bool(std::ostream&)>& write);

}  // namespace dcmesh
