#pragma once
// format_traits.hpp — exponent/mantissa layout of every precision format the
// paper studies (Table IV) plus INT8 for the Table I peak listing.

#include <array>
#include <string_view>

namespace dcmesh {

/// Which execution engine on Xe-HPC reaches peak throughput for a format.
enum class engine_kind {
  vector,  ///< 512-bit vector engines (FP64/FP32 peak)
  matrix,  ///< XMX systolic arrays (TF32/BF16/FP16/INT8 peak)
};

/// Static description of a numeric format (paper Table IV layout).
struct format_info {
  std::string_view name;     ///< Display name, e.g. "BF16".
  int exponent_bits;         ///< Width of the exponent field (0 = integer).
  int mantissa_bits;         ///< Explicit mantissa bits (integer: value bits).
  engine_kind peak_engine;   ///< Engine that reaches peak throughput.
};

/// All formats referenced by the paper, in Table I order.
[[nodiscard]] constexpr std::array<format_info, 6> all_formats() noexcept {
  return {{
      {"FP64", 11, 52, engine_kind::vector},
      {"FP32", 8, 23, engine_kind::vector},
      {"TF32", 8, 10, engine_kind::matrix},
      {"BF16", 8, 7, engine_kind::matrix},
      {"FP16", 5, 10, engine_kind::matrix},
      {"INT8", 0, 8, engine_kind::matrix},
  }};
}

/// The subset shown in the paper's Table IV (floating-point formats studied).
[[nodiscard]] constexpr std::array<format_info, 4> table4_formats() noexcept {
  return {{
      {"FP64", 11, 52, engine_kind::vector},
      {"FP32", 8, 23, engine_kind::vector},
      {"TF32", 8, 10, engine_kind::matrix},
      {"BF16", 8, 7, engine_kind::matrix},
  }};
}

/// Worst-case relative input rounding error for a format with n mantissa
/// bits: 2^-(n+1) (half ULP), as used in the paper's Section V-B bound.
[[nodiscard]] constexpr double rounding_half_ulp(int mantissa_bits) noexcept {
  double u = 1.0;
  for (int i = 0; i < mantissa_bits + 1; ++i) u *= 0.5;
  return u;
}

}  // namespace dcmesh
