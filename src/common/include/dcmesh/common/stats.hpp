#pragma once
// stats.hpp — deviation and error statistics.
//
// The paper's Figures 1 and 2 plot the deviation of observables (ekin, nexc,
// javg) from an FP32 reference over simulation time; its Section V-B argues
// about *relative* errors of GEMM outputs.  These helpers compute both.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace dcmesh {

/// Running min/max/mean/rms accumulator (Welford for the mean/variance).
class running_stats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sum_sq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }
  [[nodiscard]] double rms() const noexcept {
    return count_ ? std::sqrt(sum_sq_ / static_cast<double>(count_)) : 0.0;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Maximum absolute element-wise difference between two equal-length series.
[[nodiscard]] inline double max_abs_deviation(std::span<const double> a,
                                              std::span<const double> b) {
  double worst = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

/// Maximum relative element-wise difference |a-b| / max(|b|, floor).
[[nodiscard]] inline double max_rel_deviation(std::span<const double> a,
                                              std::span<const double> b,
                                              double floor = 1e-30) {
  double worst = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::max(std::abs(b[i]), floor);
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

/// Element-wise deviation series a[i] - b[i] (Fig 1's plotted quantity).
[[nodiscard]] inline std::vector<double> deviation_series(
    std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = a[i] - b[i];
  return d;
}

/// log10(|a-b|) series with a floor to keep zero deviations plottable
/// (Fig 2's plotted quantity).
[[nodiscard]] inline std::vector<double> log10_deviation_series(
    std::span<const double> a, std::span<const double> b,
    double floor = 1e-16) {
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = std::log10(std::max(std::abs(a[i] - b[i]), floor));
  }
  return d;
}

}  // namespace dcmesh
