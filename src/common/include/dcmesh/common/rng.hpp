#pragma once
// rng.hpp — deterministic, fast pseudo-random generation (xoshiro256++).
//
// Everything in the reproduction must be exactly repeatable across runs and
// compute modes (the paper stresses "the exact same computations were
// performed in each" when comparing modes), so all stochastic inputs —
// initial orbital noise, thermal velocities, test matrices — flow from this
// seeded generator rather than std::random_device.

#include <cstdint>
#include <limits>

namespace dcmesh {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain algorithm),
/// reimplemented here.  Satisfies UniformRandomBitGenerator.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via splitmix64 so that similar seeds give unrelated streams.
  explicit constexpr xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia polar method (deterministic, no <random>).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_scale(s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_scale(double s) noexcept;

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace dcmesh
