#pragma once
// aligned.hpp — cache-line / SIMD-aligned contiguous buffers.
//
// GEMM packing buffers and wave-function storage want 64-byte alignment so
// vector loads never split cache lines.  aligned_buffer is a minimal
// RAII owner (no per-element initialisation cost for trivial types beyond
// value-init, no implicit copies) used throughout the BLAS and LFD modules.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

namespace dcmesh {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Contiguous heap buffer of trivially-copyable elements with 64-byte
/// alignment.  Move-only; contents are value-initialised (zeroed).
template <typename T>
  requires std::is_trivially_copyable_v<T>
class aligned_buffer {
 public:
  aligned_buffer() noexcept = default;

  /// Allocate `count` value-initialised elements.
  explicit aligned_buffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    void* p = ::operator new[](count * sizeof(T),
                               std::align_val_t{kCacheLineBytes});
    data_ = static_cast<T*>(p);
    std::uninitialized_value_construct_n(data_, count);
  }

  aligned_buffer(aligned_buffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  aligned_buffer& operator=(aligned_buffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  aligned_buffer(const aligned_buffer&) = delete;
  aligned_buffer& operator=(const aligned_buffer&) = delete;

  ~aligned_buffer() { release(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

 private:
  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{kCacheLineBytes});
      data_ = nullptr;
      size_ = 0;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace dcmesh
