#pragma once
// matrix.hpp — column-major matrix storage and views.
//
// BLAS (and the wave-function matrix Ψ it operates on) are column-major with
// an explicit leading dimension.  `matrix<T>` owns aligned storage;
// `matrix_view`/`const_matrix_view` are non-owning strided views with the
// same (rows, cols, ld) description a GEMM call takes.

#include <cassert>
#include <complex>
#include <cstddef>

#include "dcmesh/common/aligned.hpp"

namespace dcmesh {

/// Non-owning mutable view of a column-major matrix.
template <typename T>
struct matrix_view {
  T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t ld = 0;  ///< Leading dimension (>= rows).

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows && c < cols);
    return data[r + c * ld];
  }
  [[nodiscard]] T* col(std::size_t c) const noexcept { return data + c * ld; }
};

/// Non-owning read-only view of a column-major matrix.
template <typename T>
struct const_matrix_view {
  const T* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t ld = 0;

  const_matrix_view() = default;
  const_matrix_view(const T* d, std::size_t r, std::size_t c, std::size_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  // Implicit conversion from the mutable view.
  const_matrix_view(matrix_view<T> v)  // NOLINT(google-explicit-constructor)
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  [[nodiscard]] const T& operator()(std::size_t r,
                                    std::size_t c) const noexcept {
    assert(r < rows && c < cols);
    return data[r + c * ld];
  }
  [[nodiscard]] const T* col(std::size_t c) const noexcept {
    return data + c * ld;
  }
};

/// Owning column-major matrix with contiguous columns (ld == rows) and
/// 64-byte-aligned storage.
template <typename T>
class matrix {
 public:
  matrix() = default;
  matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), storage_(rows * cols) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t ld() const noexcept { return rows_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_ * cols_; }

  [[nodiscard]] T* data() noexcept { return storage_.data(); }
  [[nodiscard]] const T* data() const noexcept { return storage_.data(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return storage_[r + c * rows_];
  }
  [[nodiscard]] const T& operator()(std::size_t r,
                                    std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return storage_[r + c * rows_];
  }

  [[nodiscard]] matrix_view<T> view() noexcept {
    return {storage_.data(), rows_, cols_, rows_};
  }
  [[nodiscard]] const_matrix_view<T> view() const noexcept {
    return {storage_.data(), rows_, cols_, rows_};
  }

  [[nodiscard]] std::span<T> span() noexcept { return storage_.span(); }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return storage_.span();
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  aligned_buffer<T> storage_;
};

using cfloat = std::complex<float>;
using cdouble = std::complex<double>;

}  // namespace dcmesh
