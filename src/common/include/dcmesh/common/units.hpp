#pragma once
// units.hpp — Hartree atomic units and the conversions the paper reports in.
//
// DCMESH works internally in Hartree atomic units (ħ = m_e = e = a0 = 1);
// the paper quotes energies in Hartree, time in femtoseconds, current
// density in atomic units.  Only conversion factors live here.

namespace dcmesh::units {

/// One atomic time unit in femtoseconds (ħ/Eh).
inline constexpr double atu_in_fs = 0.024188843265857;

/// One femtosecond in atomic time units.
inline constexpr double fs_in_atu = 1.0 / atu_in_fs;

/// One Hartree in electron-volts.
inline constexpr double hartree_in_ev = 27.211386245988;

/// One Bohr radius in Angstrom.
inline constexpr double bohr_in_angstrom = 0.529177210903;

/// Boltzmann constant in Hartree per Kelvin.
inline constexpr double kb_hartree_per_k = 3.166811563e-6;

/// Proton mass in electron masses (atomic mass unit conversions for MD).
inline constexpr double amu_in_me = 1822.888486209;

}  // namespace dcmesh::units
