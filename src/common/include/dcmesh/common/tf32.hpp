#pragma once
// tf32.hpp — software TF32 rounding.
//
// TF32 ("TensorFloat-32") keeps the FP32 exponent range (8 bits) but only
// 10 mantissa bits, so it occupies 19 bits.  Hardware (Intel XMX, NVIDIA
// tensor cores) stores TF32 operands in 32-bit registers with the low 13
// mantissa bits zeroed; FLOAT_TO_TF32 in oneMKL rounds FP32 inputs to this
// grid and accumulates products in FP32.

#include <bit>
#include <cstdint>

namespace dcmesh {

/// Round an FP32 value to the nearest TF32-representable value
/// (round-to-nearest-even on the 13 discarded mantissa bits).
[[nodiscard]] constexpr float round_to_tf32(float x) noexcept {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
  if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0u) {
    return std::bit_cast<float>((bits & 0xffffe000u) | 0x00400000u);
  }
  const std::uint32_t rounding_bias = 0x00000fffu + ((bits >> 13) & 1u);
  bits += rounding_bias;
  bits &= 0xffffe000u;
  return std::bit_cast<float>(bits);
}

/// A TF32 value held in an FP32 container whose low 13 mantissa bits are
/// guaranteed zero.  Conversions to/from FP32 mirror the XMX register form.
class tf32 {
 public:
  constexpr tf32() noexcept = default;
  explicit constexpr tf32(float x) noexcept : value_(round_to_tf32(x)) {}

  [[nodiscard]] constexpr float to_float() const noexcept { return value_; }
  explicit constexpr operator float() const noexcept { return value_; }

  friend constexpr bool operator==(tf32 a, tf32 b) noexcept {
    return a.value_ == b.value_;
  }

  static constexpr int exponent_bits = 8;
  static constexpr int mantissa_bits = 10;

 private:
  float value_ = 0.0f;
};

}  // namespace dcmesh
