#pragma once
// fp16.hpp — software IEEE-754 binary16 (FP16) rounding.
//
// FP16 appears in the paper's Table I (419 TFLOP/s on XMX) and Table IV;
// DCMESH itself does not use it for BLAS, but the device model and the
// format-traits table need it, and the split-GEMM machinery is generic over
// the rounding function, so we provide a faithful implementation.

#include <bit>
#include <cstdint>
#include <cmath>

namespace dcmesh {

/// Round an FP32 value to the nearest FP16-representable value and return
/// it widened back to FP32 (round-to-nearest-even; overflow goes to Inf,
/// subnormal FP16 values are represented exactly).
[[nodiscard]] inline float round_to_fp16(float x) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t sign = bits & 0x80000000u;
  const std::uint32_t abs = bits & 0x7fffffffu;

  if (abs >= 0x7f800000u) {  // Inf or NaN
    if (abs > 0x7f800000u) return std::bit_cast<float>(bits | 0x00400000u);
    return x;
  }
  // Exponent of the smallest normal FP16 is 2^-14; FP32 exponent field 113.
  if (abs >= 0x38800000u) {  // normal range
    if (abs > 0x477fefffu) {  // > max FP16 (65504 + rounding guard)
      return std::bit_cast<float>(sign | 0x7f800000u);
    }
    std::uint32_t a = abs;
    const std::uint32_t bias = 0x00000fffu + ((a >> 13) & 1u);
    a += bias;
    a &= 0xffffe000u;
    return std::bit_cast<float>(sign | a);
  }
  if (abs < 0x33000001u) {  // below half the smallest subnormal -> zero
    return std::bit_cast<float>(sign);
  }
  // Subnormal FP16: quantise to multiples of 2^-24.
  const float magnitude = std::bit_cast<float>(abs);
  const float scale = 16777216.0f;  // 2^24
  float q = std::nearbyintf(magnitude * scale) / scale;
  return std::bit_cast<float>(sign | std::bit_cast<std::uint32_t>(q));
}

/// FP16 value held widened in an FP32 container.
class fp16 {
 public:
  constexpr fp16() noexcept = default;
  explicit fp16(float x) noexcept : value_(round_to_fp16(x)) {}

  [[nodiscard]] constexpr float to_float() const noexcept { return value_; }
  explicit constexpr operator float() const noexcept { return value_; }

  static constexpr int exponent_bits = 5;
  static constexpr int mantissa_bits = 10;

 private:
  float value_ = 0.0f;
};

}  // namespace dcmesh
