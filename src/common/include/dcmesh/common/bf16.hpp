#pragma once
// bf16.hpp — software bfloat16 (BF16) value type.
//
// BF16 is the 16-bit truncated form of IEEE-754 binary32: 1 sign bit,
// 8 exponent bits, 7 mantissa bits.  The Intel XMX systolic arrays consume
// BF16 operands and accumulate in FP32; oneMKL's FLOAT_TO_BF16* compute
// modes round FP32 inputs to (sums of) BF16 before the multiply.  This type
// reproduces that rounding on the CPU so the numerical behaviour of the
// alternative compute modes can be emulated bit-faithfully.

#include <bit>
#include <cstdint>
#include <cmath>
#include <limits>

namespace dcmesh {

/// Round an FP32 value to the nearest BF16-representable FP32 value using
/// round-to-nearest-even (the rounding mode used by Intel XMX conversions).
/// NaN payloads are quieted; infinities and zeros pass through unchanged.
[[nodiscard]] constexpr float round_to_bf16(float x) noexcept {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
  // NaN: force a quiet NaN so the truncated mantissa cannot become Inf.
  if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0u) {
    return std::bit_cast<float>((bits & 0xffff0000u) | 0x00400000u);
  }
  // Round to nearest even on the 16 bits that will be discarded.
  const std::uint32_t rounding_bias = 0x00007fffu + ((bits >> 16) & 1u);
  bits += rounding_bias;
  bits &= 0xffff0000u;
  return std::bit_cast<float>(bits);
}

/// A 16-bit brain-float value.  Stored as the upper half of the FP32
/// pattern; conversion back to FP32 is exact (zero-extend the mantissa).
class bf16 {
 public:
  constexpr bf16() noexcept = default;

  /// Construct from FP32 with round-to-nearest-even.
  explicit constexpr bf16(float x) noexcept
      : bits_(static_cast<std::uint16_t>(
            std::bit_cast<std::uint32_t>(round_to_bf16(x)) >> 16)) {}

  /// Exact widening conversion back to FP32.
  [[nodiscard]] constexpr float to_float() const noexcept {
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits_) << 16);
  }
  explicit constexpr operator float() const noexcept { return to_float(); }

  /// Raw 16-bit pattern (sign:1, exponent:8, mantissa:7).
  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  /// Construct from a raw 16-bit pattern.
  [[nodiscard]] static constexpr bf16 from_bits(std::uint16_t b) noexcept {
    bf16 v;
    v.bits_ = b;
    return v;
  }

  friend constexpr bool operator==(bf16 a, bf16 b) noexcept {
    return a.to_float() == b.to_float();
  }

  static constexpr int exponent_bits = 8;
  static constexpr int mantissa_bits = 7;

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(bf16) == 2);

}  // namespace dcmesh
