#pragma once
// spectrum.hpp — discrete power spectra of observable time series.
//
// The physically interesting product of a laser-driven current javg(t) is
// its emission spectrum (high-harmonic generation).  A windowed direct DFT
// is provided — O(n^2), deliberately dependency-free, and plenty fast for
// the few-thousand-sample QD series this code produces.

#include <cstddef>
#include <span>
#include <vector>

namespace dcmesh {

/// |X_k|^2 for k = 0 .. n/2 of a real series, optionally Hann-windowed
/// (reduces leakage so harmonic peaks are resolvable).  The mean is
/// removed before transforming so bin 0 reflects drift, not offset.
[[nodiscard]] std::vector<double> power_spectrum(std::span<const double> x,
                                                 bool hann_window = true);

/// Angular frequency of spectrum bin k for sample spacing dt and series
/// length n: omega_k = 2 pi k / (n dt).
[[nodiscard]] double bin_angular_frequency(std::size_t k, double dt,
                                           std::size_t n);

/// Nearest bin to angular frequency omega.
[[nodiscard]] std::size_t nearest_bin(double omega, double dt,
                                      std::size_t n);

}  // namespace dcmesh
