#include "dcmesh/common/env.hpp"

#include <cctype>
#include <cstdlib>

namespace dcmesh {

std::optional<std::string> env_get(std::string_view name) {
  const std::string key(name);
  const char* value = std::getenv(key.c_str());
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

long env_get_int(std::string_view name, long fallback) {
  const auto value = env_get(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str()) return fallback;
  return parsed;
}

void env_set(std::string_view name, std::string_view value) {
  ::setenv(std::string(name).c_str(), std::string(value).c_str(), 1);
}

void env_unset(std::string_view name) {
  ::unsetenv(std::string(name).c_str());
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

}  // namespace dcmesh
