#include "dcmesh/common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>

namespace dcmesh {
namespace {

/// Unique-per-process-and-call temp name beside the destination (same
/// filesystem, so the final rename is atomic).
std::string temp_path_for(const std::string& path) {
  static std::atomic<unsigned> counter{0};
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%u",
                static_cast<long>(::getpid()),
                counter.fetch_add(1, std::memory_order_relaxed));
  return path + suffix;
}

/// fsync by path; best-effort false on failure.
bool fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool atomic_write_file(const std::string& path,
                       const std::function<bool(std::ostream&)>& write) {
  if (path.empty()) return false;
  const std::string tmp = temp_path_for(path);
  bool ok = false;
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    try {
      ok = write(os);
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
    os.flush();
    ok = ok && os.good();
  }
  // Durability before visibility: the data must be on disk before the
  // rename makes it the checkpoint a restart would read.
  ok = ok && fsync_path(tmp, O_WRONLY);
  ok = ok && std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  // Persist the rename itself (directory entry); best-effort — the file
  // content is already safe either way.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  (void)fsync_path(dir, O_RDONLY | O_DIRECTORY);
  return true;
}

}  // namespace dcmesh
