#include "dcmesh/common/rng.hpp"

#include <cmath>

namespace dcmesh {

double xoshiro256::sqrt_scale(double s) noexcept {
  return std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace dcmesh
