#include "dcmesh/common/spectrum.hpp"

#include <cmath>
#include <numbers>

namespace dcmesh {

std::vector<double> power_spectrum(std::span<const double> x,
                                   bool hann_window) {
  const std::size_t n = x.size();
  if (n == 0) return {};

  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);

  std::vector<double> windowed(n);
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double w =
        hann_window
            ? 0.5 * (1.0 - std::cos(two_pi * static_cast<double>(i) /
                                    static_cast<double>(n - 1 + (n == 1))))
            : 1.0;
    windowed[i] = w * (x[i] - mean);
  }

  std::vector<double> spectrum(n / 2 + 1);
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    double re = 0.0, im = 0.0;
    const double base = two_pi * static_cast<double>(k) /
                        static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double phase = base * static_cast<double>(i);
      re += windowed[i] * std::cos(phase);
      im -= windowed[i] * std::sin(phase);
    }
    spectrum[k] = re * re + im * im;
  }
  return spectrum;
}

double bin_angular_frequency(std::size_t k, double dt, std::size_t n) {
  return 2.0 * std::numbers::pi * static_cast<double>(k) /
         (static_cast<double>(n) * dt);
}

std::size_t nearest_bin(double omega, double dt, std::size_t n) {
  const double k = omega * static_cast<double>(n) * dt /
                   (2.0 * std::numbers::pi);
  const auto rounded = static_cast<long long>(std::llround(k));
  if (rounded < 0) return 0;
  const std::size_t max_bin = n / 2;
  return std::min<std::size_t>(static_cast<std::size_t>(rounded), max_bin);
}

}  // namespace dcmesh
