#include "dcmesh/common/file_lock.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>

namespace dcmesh {

file_lock::file_lock(const std::string& path) {
  if (path.empty()) return;
  const std::string lock_path = path + kSuffix;
  // O_CLOEXEC: campaign workers fork+exec; a leaked lock fd in a worker
  // would deadlock every sibling for the worker's whole lifetime.
  const int fd =
      ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return;
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return;
  }
  fd_ = fd;
}

file_lock::~file_lock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace dcmesh
