// gemm_modes.cpp — using minimkl directly, the way the paper uses oneMKL.
//
// Shows the three control surfaces: the MKL_BLAS_COMPUTE_MODE environment
// variable (the paper's method — zero source changes), the programmatic
// API, and the scoped per-call override (the paper's future-work
// extension).  Also demonstrates MKL_VERBOSE-style call logging.

#include <cstdio>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/rng.hpp"

namespace {

using namespace dcmesh;

/// Frobenius-norm relative error ||C - ref|| / ||ref|| against a
/// double-accumulated reference (robust to near-zero entries).
double rel_error_vs_fp64(const std::vector<float>& c,
                         const std::vector<float>& a,
                         const std::vector<float>& b, int n) {
  std::vector<float> ref(c.size());
  blas::detail::gemm_ref<float, double>(
      blas::transpose::none, blas::transpose::none, n, n, n, 1.0f, a.data(),
      n, b.data(), n, 0.0f, ref.data(), n);
  double err2 = 0.0, norm2 = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double d = static_cast<double>(c[i]) - ref[i];
    err2 += d * d;
    norm2 += static_cast<double>(ref[i]) * ref[i];
  }
  return std::sqrt(err2 / norm2);
}

}  // namespace

int main() {
  using namespace dcmesh;
  const int n = 96;
  xoshiro256 rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));

  const auto gemm = [&] {
    blas::sgemm(blas::transpose::none, blas::transpose::none, n, n, n, 1.0f,
                a.data(), n, b.data(), n, 0.0f, c.data(), n);
  };

  // 1. Environment variable — the paper's methodology.
  std::printf("--- control by environment variable ---\n");
  for (const char* token :
       {"", "FLOAT_TO_BF16", "FLOAT_TO_BF16X2", "FLOAT_TO_BF16X3",
        "FLOAT_TO_TF32"}) {
    if (*token == '\0') {
      env_unset(blas::kComputeModeEnvVar);
    } else {
      env_set(blas::kComputeModeEnvVar, token);
    }
    gemm();
    std::printf("MKL_BLAS_COMPUTE_MODE=%-17s active=%-10s rel error (Frobenius) "
                "%.3e\n",
                *token ? token : "(unset)",
                std::string(blas::name(blas::active_compute_mode())).c_str(),
                rel_error_vs_fp64(c, a, b, n));
  }
  env_unset(blas::kComputeModeEnvVar);

  // 2. Programmatic API (overrides the environment).
  std::printf("\n--- control by API ---\n");
  blas::set_compute_mode(blas::compute_mode::float_to_tf32);
  gemm();
  std::printf("set_compute_mode(TF32): rel error (Frobenius) %.3e\n",
              rel_error_vs_fp64(c, a, b, n));
  blas::clear_compute_mode();

  // 3. Scoped override — per-call-site precision (paper future work).
  std::printf("\n--- scoped per-call override ---\n");
  {
    blas::scoped_compute_mode scope(blas::compute_mode::float_to_bf16);
    gemm();
    std::printf("inside scope (BF16):    rel error (Frobenius) %.3e\n",
                rel_error_vs_fp64(c, a, b, n));
  }
  gemm();
  std::printf("outside scope (FP32):   rel error (Frobenius) %.3e\n",
              rel_error_vs_fp64(c, a, b, n));

  // 4. MKL_VERBOSE-style call log.
  std::printf("\n--- call log (last 3 of %llu calls) ---\n",
              static_cast<unsigned long long>(blas::call_count()));
  const auto log = blas::recent_calls();
  for (std::size_t i = log.size() >= 3 ? log.size() - 3 : 0; i < log.size();
       ++i) {
    std::printf("%s\n", log[i].to_string().c_str());
  }
  return 0;
}
