// dcehd.cpp — the DCMESH application binary (the artifact's ../bin/dcehd).
//
// Reads an lfd.in-style deck (or a named preset), runs the full QXMD + LFD
// simulation, and streams the QD log to stdout exactly as the artifact
// describes; precision is controlled purely by MKL_BLAS_COMPUTE_MODE and
// the deck's lfd_precision, and MKL_VERBOSE=2 prints per-BLAS-call lines.
//
// Usage:
//   dcehd <lfd.in> [options]          run a config deck
//   dcehd --preset <name> [options]   run a named preset
//   dcehd --print-deck <name>         dump a preset as a deck and exit
// Options:
//   --checkpoint-out <path>   write a binary checkpoint after every series
//   --resume <path>           restore state from a checkpoint and continue
//   --xyz <path>              append an extended-XYZ frame per series

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "dcmesh/core/checkpoint.hpp"
#include "dcmesh/core/dcmesh.hpp"
#include "dcmesh/qxmd/xyz.hpp"

namespace {

using namespace dcmesh;

core::run_config load(const std::string& arg, bool is_preset) {
  if (!is_preset) return core::parse_config_file(arg);
  for (core::paper_system system : core::all_presets()) {
    if (core::name(system) == arg) return core::preset(system);
  }
  throw std::runtime_error(
      "unknown preset '" + arg +
      "' (try: pto40, pto135, pto40_scaled, pto135_scaled, tiny)");
}

int usage() {
  std::fprintf(stderr,
               "usage: dcehd <lfd.in> | dcehd --preset <name> | "
               "dcehd --print-deck <name>\n"
               "options: --checkpoint-out <path> --resume <path> "
               "--xyz <path>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) return usage();

  if (std::strcmp(argv[1], "--print-deck") == 0) {
    if (argc < 3) return usage();
    std::cout << core::to_deck(load(argv[2], true));
    return 0;
  }

  // Parse positional source + options.
  std::optional<std::string> source, preset_name, checkpoint_out, resume,
      xyz_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--preset") {
      preset_name = next();
    } else if (arg == "--checkpoint-out") {
      checkpoint_out = next();
    } else if (arg == "--resume") {
      resume = next();
    } else if (arg == "--xyz") {
      xyz_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dcehd: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      source = arg;
    }
  }
  if (!source && !preset_name && !resume) return usage();

  // Build or restore the driver.
  std::optional<core::driver> sim;
  if (resume) {
    sim.emplace(core::load_checkpoint_file(*resume));
    std::fprintf(stderr, "dcehd: resumed from %s at t = %.3f a.t.u.\n",
                 resume->c_str(), sim->time());
  } else {
    const core::run_config config =
        load(preset_name ? *preset_name : *source, preset_name.has_value());
    if (config.ngrid() > 64LL * 64 * 64) {
      std::fprintf(stderr,
                   "dcehd: this configuration (%lld mesh points) is a "
                   "device-model target; run a *_scaled preset for real "
                   "numerics on a CPU (see DESIGN.md)\n",
                   static_cast<long long>(config.ngrid()));
      return 3;
    }
    sim.emplace(config);
  }

  const core::run_config& config = sim->config();
  std::fprintf(stderr,
               "dcehd: %d atoms, %lld^3 mesh, %zu orbitals (%zu occupied), "
               "%d series x %d QD steps, LFD %s, BLAS mode %s\n",
               config.atom_count(), static_cast<long long>(config.mesh_n),
               config.norb, config.nocc, config.series,
               config.qd_steps_per_series,
               config.lfd_precision == core::lfd_precision_level::fp64
                   ? "FP64"
                   : "FP32",
               std::string(blas::name(blas::active_compute_mode())).c_str());

  std::ofstream xyz_stream;
  if (xyz_path) {
    xyz_stream.open(*xyz_path, std::ios::app);
    if (!xyz_stream) {
      throw std::runtime_error("cannot open " + *xyz_path);
    }
  }

  std::cout << core::qd_header() << '\n';
  for (int s = 0; s < config.series; ++s) {
    const auto before = sim->records().size();
    const core::series_report report = sim->run_series();
    for (std::size_t i = before; i < sim->records().size(); ++i) {
      std::cout << core::format_qd_record(sim->records()[i]) << '\n';
    }
    std::fprintf(stderr,
                 "series %d done: SCF drift %.3e repaired, ion Epot %.4f "
                 "Ha, Ekin %.4e Ha, wavefunction %s\n",
                 s + 1, report.scf.max_norm_drift,
                 report.ion_potential_energy, report.ion_kinetic_energy,
                 report.wavefunction_transferred ? "transferred"
                                                 : "shadowed");
    if (checkpoint_out) {
      core::save_checkpoint_file(*sim, *checkpoint_out);
      std::fprintf(stderr, "checkpoint written to %s\n",
                   checkpoint_out->c_str());
    }
    if (xyz_stream.is_open()) {
      qxmd::write_xyz_frame(xyz_stream, sim->atoms(), sim->time());
    }
  }

  std::fprintf(stderr, "%s", sim->tracer().to_string().c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "dcehd: %s\n", e.what());
  return 1;
}
