// quickstart.cpp — smallest end-to-end DCMESH run.
//
// Builds the tiny preset (5-atom PbTiO3 cell, 8^3 mesh, 8 orbitals), runs
// two series of 20 QD steps with an FP64 SCF refresh between them, and
// prints the QD log in the artifact's column order.  The BLAS compute mode
// is whatever MKL_BLAS_COMPUTE_MODE says — try:
//
//   ./quickstart                                      # FP32 reference
//   MKL_BLAS_COMPUTE_MODE=FLOAT_TO_BF16 ./quickstart  # BF16 mode
//   MKL_VERBOSE=2 ./quickstart                        # per-call BLAS log
//   DCMESH_TRACE_JSON=trace.json ./quickstart         # Chrome trace

#include <iostream>

#include "dcmesh/core/dcmesh.hpp"
#include "dcmesh/trace/metrics.hpp"
#include "dcmesh/trace/tracer.hpp"

int main() {
  using namespace dcmesh;

  core::run_config config = core::preset(core::paper_system::tiny);
  std::cout << "# DCMESH quickstart: " << config.atom_count() << " atoms, "
            << config.mesh_n << "^3 mesh, " << config.norb << " orbitals, "
            << config.total_qd_steps() << " QD steps\n";
  std::cout << "# active BLAS compute mode: "
            << blas::name(blas::active_compute_mode()) << "\n";

  core::driver sim(config);
  sim.run();

  core::write_qd_log(std::cout, sim.records());

  std::cout << "# BLAS level-3 calls: " << blas::call_count() << "\n"
            << "# shadow dynamics: "
            << sim.shadow().transfers_performed() << " transfers, "
            << sim.shadow().transfers_avoided() << " avoided, "
            << sim.shadow().bytes_transferred() << " bytes moved\n"
            << sim.tracer().to_string()
            << "# per-site GEMM counters:\n"
            << trace::gemm_metrics_report();
  if (trace::tracer::instance().enabled()) {
    std::cout << "# trace: " << trace::tracer::instance().event_count()
              << " spans buffered (written to $DCMESH_TRACE_JSON at exit)\n";
  }
  return 0;
}
