// abft_drill.cpp — closed-loop ABFT campaign: inject a finite bitflip
// into a chained real-GEMM trajectory and watch checksummed GEMM detect,
// locate, and correct it.
//
// The drill runs a 10-step trajectory S <- (1/k) A S at a tagged site
// ("abft/remap", the occupied-subspace remap shape family) twice: once
// clean with ABFT active (the zero-false-positive golden run) and once
// with a fault injected mid-trajectory, then compares the two
// trajectories BITWISE step by step.  With DCMESH_ABFT=correct and an
// input-space fault (bitflip_a/bitflip_b), the corrected trajectory
// must replay the clean one exactly; exit status is nonzero otherwise —
// CI's abft-campaign leg sweeps this binary over the compute-mode grid.
//
//   ./abft_drill                                      # built-in drill
//   MKL_BLAS_COMPUTE_MODE=FLOAT_TO_BF16X2 ./abft_drill
//   DCMESH_ABFT=detect ./abft_drill                   # report, keep corrupt C
//   DCMESH_FAULT_PLAN='abft/*:5:bitflip_b:30:2' ./abft_drill
//
// (An env-provided DCMESH_FAULT_PLAN overrides the built-in plan — a
// bit-30 flip of one element of A at step 5.  Bit 30 is the top
// exponent bit: it turns a ~0.5 operand into ~1e38, finite — invisible
// to the NaN/Inf sentinel — yet far above every mode's residual
// threshold, so detection is deterministic across the whole mode grid.
// A low-mantissa flip would instead be *correctly* tolerated by the
// relaxed thresholds of the BF16-family modes.)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/resil/abft.hpp"
#include "dcmesh/resil/fault_plan.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace {

constexpr int kDim = 48;     // square trajectory: m = n = k
constexpr int kSteps = 10;

/// xorshift-ish deterministic fill in [0, 0.5) — same operands every run.
void fill(std::vector<float>& v, std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& x : v) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    x = static_cast<float>((s >> 11) % 1000000) * 0.5e-6f;
  }
}

/// One full trajectory: S_{t+1} = (1/k) A S_t, every step through the
/// tagged dispatch chokepoint.  Returns the concatenated per-step state
/// bytes for bitwise comparison.
std::vector<float> run_trajectory(const std::vector<float>& a,
                                  std::vector<float> s) {
  using namespace dcmesh;
  const auto n = static_cast<std::size_t>(kDim);
  std::vector<float> trajectory;
  std::vector<float> next(n * n);
  for (int step = 0; step < kSteps; ++step) {
    blas::gemm<float>(blas::transpose::none, blas::transpose::none,
                      1.0f / static_cast<float>(kDim),
                      {a.data(), n, n, n}, {s.data(), n, n, n}, 0.0f,
                      {next.data(), n, n, n}, "abft/remap");
    s.swap(next);
    trajectory.insert(trajectory.end(), s.begin(), s.end());
  }
  return trajectory;
}

}  // namespace

int main() {
  using namespace dcmesh;

  // The campaign defaults to abft=correct, but an explicit DCMESH_ABFT
  // wins so CI can also exercise detect-only and off.
  if (!env_get(resil::kAbftEnvVar)) {
    resil::set_abft_mode(resil::abft_mode::correct);
  }
  const resil::abft_mode abft = resil::active_abft_mode();
  const blas::compute_mode mode = blas::active_compute_mode();

  std::printf("# DCMESH ABFT drill: %d-step %dx%dx%d real-GEMM "
              "trajectory, mode=%s, abft=%s\n",
              kSteps, kDim, kDim, kDim,
              std::string(blas::name(mode)).c_str(),
              std::string(resil::name(abft)).c_str());

  // Campaign plan: the environment's if set (malformed text falls back
  // to the built-in drill, the shared warn-and-disable env contract),
  // else one bit-30 flip in A at the 5th trajectory step.
  resil::fault_plan plan;
  bool builtin_plan = true;
  if (const auto text = env_get(resil::kFaultPlanEnvVar)) {
    try {
      plan = resil::parse_fault_plan(*text);
      builtin_plan = false;
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "abft_drill: malformed DCMESH_FAULT_PLAN "
                           "(%s); using the built-in drill\n",
                   error.what());
    }
  }
  if (builtin_plan) {
    plan.rules.push_back(
        {"abft/*", 5, resil::fault_kind::bitflip_a, 30, 1});
  }

  std::vector<float> a(static_cast<std::size_t>(kDim) * kDim);
  std::vector<float> s0(static_cast<std::size_t>(kDim) * kDim);
  fill(a, 0x9e3779b97f4a7c15ull);
  fill(s0, 0xd1b54a32d192ed03ull);

  // Golden run: fault-free (an empty programmatic plan masks any env
  // plan) but with ABFT live — any abft_detect here is a false positive
  // against the per-mode thresholds.
  resil::set_fault_plan(resil::fault_plan{});
  trace::clear_health_counters();
  const std::vector<float> clean = run_trajectory(a, s0);
  const unsigned long long false_positives =
      trace::health_counter("abft_detect");
  const unsigned long long clean_checked =
      trace::health_counter("abft_check");

  // Faulty run: same operands, campaign plan armed.
  resil::set_fault_plan(plan);
  trace::clear_health_counters();
  const std::vector<float> faulty = run_trajectory(a, s0);
  const unsigned long long injected = resil::injection_count();
  const unsigned long long checked = trace::health_counter("abft_check");
  const unsigned long long detected = trace::health_counter("abft_detect");
  const unsigned long long corrected =
      trace::health_counter("abft_correct");
  const unsigned long long escalated =
      trace::health_counter("abft_escalate");
  resil::set_fault_plan(std::nullopt);

  const bool bitwise_identical =
      clean.size() == faulty.size() &&
      std::memcmp(clean.data(), faulty.data(),
                  clean.size() * sizeof(float)) == 0;
  bool finite = true;
  for (const float x : faulty) finite = finite && std::isfinite(x);

  // What "ok" means depends on the tier under test: correct must close
  // the loop bit-identically; detect must at least see the hit; off is
  // the vacuity baseline — the finite corruption sails through silently.
  bool ok = false;
  switch (abft) {
    case resil::abft_mode::correct:
      ok = false_positives == 0 && injected >= 1 && checked >= 1 &&
           detected >= 1 && corrected >= 1 && bitwise_identical && finite;
      break;
    case resil::abft_mode::detect:
      ok = false_positives == 0 && injected >= 1 && detected >= 1;
      break;
    case resil::abft_mode::off:
      ok = injected >= 1 && checked == 0 && clean_checked == 0;
      break;
  }

  std::printf("abft: checked=%llu detected=%llu corrected=%llu "
              "escalated=%llu false_positives=%llu\n",
              checked, detected, corrected, escalated, false_positives);
  std::printf("campaign: injected=%llu bitwise=%s status=%s\n", injected,
              bitwise_identical ? "identical" : "divergent",
              ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
