// intercept_demo.cpp — a plain LAPACK-style least-squares solver that
// knows NOTHING about dcmesh.
//
// It declares the standard BLAS prototypes itself and links only against
// libdemoblas.so (a naive stand-in system BLAS), exactly like any
// third-party numerical binary.  Run it plainly and the naive BLAS
// executes; run it as
//
//   LD_PRELOAD=path/to/libdcmesh_intercept.so ./intercept_demo
//
// and every one of its GEMMs — CBLAS and Fortran, all four type
// variants, plus a strided batch — is transparently routed through the
// dcmesh engine: precision policies match on return-address-derived
// sites ("intercept/intercept_demo+0x..."), AUTO rules calibrate and
// persist wisdom, and MKL_VERBOSE/metrics/trace records appear, with
// zero changes to this file.
//
// The solver: overdetermined least squares min ||Ax - b|| via normal
// equations (G = A^T A formed by GEMM, Cholesky factorization, forward/
// back substitution), repeated in float and double; complex GEMMs are
// verified against a local reference.  b is constructed as A*x_true, so
// the consistent system has a near-zero residual and the check measures
// arithmetic quality.  Tolerances are loose enough that any legitimate
// reduced-precision mode passes while a broken transpose/layout path
// (errors of order 1) fails loudly.

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <vector>

extern "C" {
// CBLAS (column-major = 102; NoTrans/Trans/ConjTrans = 111/112/113).
void cblas_sgemm(int layout, int transa, int transb, int m, int n, int k,
                 float alpha, const float* a, int lda, const float* b,
                 int ldb, float beta, float* c, int ldc);
void cblas_zgemm(int layout, int transa, int transb, int m, int n, int k,
                 const void* alpha, const void* a, int lda, const void* b,
                 int ldb, const void* beta, void* c, int ldc);
void cblas_sgemm_batch_strided(int layout, int transa, int transb, int m,
                               int n, int k, float alpha, const float* a,
                               int lda, int stride_a, const float* b,
                               int ldb, int stride_b, float beta, float* c,
                               int ldc, int stride_c, int batch);
// Fortran BLAS.
void dgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const double* alpha,
            const double* a, const int* lda, const double* b,
            const int* ldb, const double* beta, double* c, const int* ldc);
void cgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const void* alpha, const void* a,
            const int* lda, const void* b, const int* ldb, const void* beta,
            void* c, const int* ldc);
}

namespace {

// Deterministic operands: same matrices every run, so wisdom keys and
// accuracy checks are reproducible.
struct lcg {
  std::uint64_t state = 0x243f6a8885a308d3ULL;
  double next() {  // in [-0.5, 0.5)
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  }
};

/// In-place Cholesky G = L L^T, then solve L L^T x = rhs.  Returns false
/// when G is not positive definite (a grossly corrupted GEMM result).
template <typename T>
bool cholesky_solve(std::vector<T>& g, std::vector<T>& x, int n) {
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      T sum = g[i + j * n];
      for (int p = 0; p < j; ++p) sum -= g[i + p * n] * g[j + p * n];
      if (i == j) {
        if (!(sum > T(0))) return false;
        g[j + j * n] = std::sqrt(sum);
      } else {
        g[i + j * n] = sum / g[j + j * n];
      }
    }
  }
  for (int i = 0; i < n; ++i) {  // forward: L y = rhs
    T sum = x[i];
    for (int p = 0; p < i; ++p) sum -= g[i + p * n] * x[p];
    x[i] = sum / g[i + i * n];
  }
  for (int i = n - 1; i >= 0; --i) {  // backward: L^T x = y
    T sum = x[i];
    for (int p = i + 1; p < n; ++p) sum -= g[p + i * n] * x[p];
    x[i] = sum / g[i + i * n];
  }
  return true;
}

// Distinct PHYSICAL call sites on purpose: under the interposition shim
// each of these noinline functions yields its own return address, hence
// its own site tag — the thing the site-identity test and per-site
// policies rely on.
__attribute__((noinline)) void form_gram_f32(int m, int n, const float* a,
                                             float* g) {
  cblas_sgemm(102, 112, 111, n, n, m, 1.0f, a, m, a, m, 0.0f, g, n);
}

__attribute__((noinline)) void form_rhs_f32(int m, int n, const float* a,
                                            const float* b, float* rhs) {
  cblas_sgemm(102, 112, 111, n, 1, m, 1.0f, a, m, b, m, 0.0f, rhs, n);
}

__attribute__((noinline)) void residual_f32(int m, int n, const float* a,
                                            const float* x, float* r) {
  // r <- A x - r  (r holds b on entry)
  cblas_sgemm(102, 111, 111, m, 1, n, 1.0f, a, m, x, n, -1.0f, r, m);
}

/// Least squares in float via CBLAS; returns the relative residual.
double solve_f32(int m, int n) {
  lcg rng;
  std::vector<float> a(static_cast<size_t>(m) * n), b(m);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      a[i + static_cast<size_t>(j) * m] =
          static_cast<float>(0.2 * rng.next() + (i == j ? 4.0 : 0.0));
    }
  }
  // b = A * x_true (accumulated in double): a consistent system, so the
  // true least-squares residual is ~0 and the check is meaningful.
  std::vector<double> xt(n);
  for (int j = 0; j < n; ++j) xt[j] = rng.next();
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += a[i + static_cast<size_t>(j) * m] * xt[j];
    b[i] = static_cast<float>(acc);
  }
  std::vector<float> g(static_cast<size_t>(n) * n), x(n), r = b;
  form_gram_f32(m, n, a.data(), g.data());
  form_rhs_f32(m, n, a.data(), b.data(), x.data());
  if (!cholesky_solve(g, x, n)) return 1e30;
  residual_f32(m, n, a.data(), x.data(), r.data());
  double rr = 0.0, bb = 0.0;
  for (int i = 0; i < m; ++i) {
    rr += static_cast<double>(r[i]) * r[i];
    bb += static_cast<double>(b[i]) * b[i];
  }
  return std::sqrt(rr / bb);
}

/// Least squares in double via Fortran dgemm_.
double solve_f64(int m, int n) {
  lcg rng;
  std::vector<double> a(static_cast<size_t>(m) * n), b(m);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      a[i + static_cast<size_t>(j) * m] =
          0.2 * rng.next() + (i == j ? 4.0 : 0.0);
    }
  }
  std::vector<double> xt(n);
  for (int j = 0; j < n; ++j) xt[j] = rng.next();
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += a[i + static_cast<size_t>(j) * m] * xt[j];
    b[i] = acc;
  }
  std::vector<double> g(static_cast<size_t>(n) * n), x(n), r = b;
  const double one = 1.0, zero = 0.0, neg = -1.0;
  const int in = n, im = m, ione = 1;
  dgemm_("T", "N", &in, &in, &im, &one, a.data(), &im, a.data(), &im,
         &zero, g.data(), &in);
  dgemm_("T", "N", &in, &ione, &im, &one, a.data(), &im, b.data(), &im,
         &zero, x.data(), &in);
  if (!cholesky_solve(g, x, n)) return 1e30;
  dgemm_("N", "N", &im, &ione, &in, &one, a.data(), &im, x.data(), &in,
         &neg, r.data(), &im);
  double rr = 0.0, bb = 0.0;
  for (int i = 0; i < m; ++i) {
    rr += r[i] * r[i];
    bb += b[i] * b[i];
  }
  return std::sqrt(rr / bb);
}

/// Relative error of one complex GEMM against a local double reference.
template <typename T>
double complex_gemm_error(int n, void (*run)(int, const std::complex<T>*,
                                             const std::complex<T>*,
                                             std::complex<T>*)) {
  lcg rng;
  std::vector<std::complex<T>> a(static_cast<size_t>(n) * n), b(a), c(a);
  for (auto& v : a) {
    v = {static_cast<T>(rng.next()), static_cast<T>(rng.next())};
  }
  for (auto& v : b) {
    v = {static_cast<T>(rng.next()), static_cast<T>(rng.next())};
  }
  run(n, a.data(), b.data(), c.data());
  double err = 0.0, norm = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      std::complex<double> ref{};
      for (int p = 0; p < n; ++p) {
        ref += std::complex<double>(a[i + static_cast<size_t>(p) * n]) *
               std::complex<double>(b[p + static_cast<size_t>(j) * n]);
      }
      const std::complex<double> got(c[i + static_cast<size_t>(j) * n]);
      err += std::norm(got - ref);
      norm += std::norm(ref);
    }
  }
  return std::sqrt(err / norm);
}

void run_cgemm(int n, const std::complex<float>* a,
               const std::complex<float>* b, std::complex<float>* c) {
  const std::complex<float> one{1.0f, 0.0f}, zero{0.0f, 0.0f};
  cgemm_("N", "N", &n, &n, &n, &one, a, &n, b, &n, &zero, c, &n);
}

void run_zgemm(int n, const std::complex<double>* a,
               const std::complex<double>* b, std::complex<double>* c) {
  const std::complex<double> one{1.0, 0.0}, zero{0.0, 0.0};
  cblas_zgemm(102, 111, 111, n, n, n, &one, a, n, b, n, &zero, c, n);
}

/// Relative error of a strided batch of small sgemms vs a local ref.
double batch_error(int n, int batch) {
  lcg rng;
  const size_t stride = static_cast<size_t>(n) * n;
  std::vector<float> a(stride * batch), b(a), c(a);
  for (auto& v : a) v = static_cast<float>(rng.next());
  for (auto& v : b) v = static_cast<float>(rng.next());
  cblas_sgemm_batch_strided(102, 111, 111, n, n, n, 1.0f, a.data(), n,
                            static_cast<int>(stride), b.data(), n,
                            static_cast<int>(stride), 0.0f, c.data(), n,
                            static_cast<int>(stride), batch);
  double err = 0.0, norm = 0.0;
  for (int q = 0; q < batch; ++q) {
    const float* pa = a.data() + q * stride;
    const float* pb = b.data() + q * stride;
    const float* pc = c.data() + q * stride;
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        double ref = 0.0;
        for (int p = 0; p < n; ++p) {
          ref += static_cast<double>(pa[i + static_cast<size_t>(p) * n]) *
                 pb[p + static_cast<size_t>(j) * n];
        }
        const double d = pc[i + static_cast<size_t>(j) * n] - ref;
        err += d * d;
        norm += ref * ref;
      }
    }
  }
  return std::sqrt(err / norm);
}

}  // namespace

int main() {
  bool ok = true;
  const auto check = [&ok](const char* what, double value, double tol) {
    const bool pass = std::isfinite(value) && value < tol;
    std::printf("intercept_demo: %s resid=%.3e tol=%.0e %s\n", what, value,
                tol, pass ? "pass" : "FAIL");
    if (!pass) ok = false;
  };
  // Loose float tolerances: correct arithmetic at ANY supported compute
  // mode (down to single-component BF16) lands well below them; a wrong
  // layout/transpose path lands orders of magnitude above.
  check("sgemm_lstsq", solve_f32(48, 24), 1e-1);
  check("dgemm_lstsq", solve_f64(48, 24), 1e-6);
  check("cgemm", complex_gemm_error<float>(16, run_cgemm), 1e-1);
  check("zgemm", complex_gemm_error<double>(16, run_zgemm), 1e-6);
  check("sgemm_batch", batch_error(8, 3), 1e-1);
  std::printf("intercept_demo: status=%s\n", ok ? "ok" : "fail");
  return ok ? 0 : 1;
}
