// fault_drill.cpp — resilience drill: inject a fault into a BF16 run and
// watch the sentinel catch and repair it.
//
// Runs the tiny preset twice with the health sentinel at "full": once
// clean, once with a NaN injected into a mid-trajectory nonlocal
// projection GEMM, then prints a one-line resilience summary and the
// final-step observable deltas.  Exit status is nonzero if the faulty
// run failed to recover — CI uses this as the fault-smoke gate.
//
//   ./fault_drill                                     # built-in drill
//   DCMESH_FAULT_PLAN='lfd/*:7:bitflip' ./fault_drill # your own campaign
//   DCMESH_HEALTH=sample ./fault_drill                # cheaper scans
//
// (An env-provided DCMESH_FAULT_PLAN overrides the built-in plan; the
// env grammar is site-glob:call#:kind[:param] with kinds
// bitflip|nan|inf|scale.)

#include <cmath>
#include <cstdio>
#include <optional>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/core/dcmesh.hpp"
#include "dcmesh/resil/fault_plan.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/trace/metrics.hpp"

int main() {
  using namespace dcmesh;

  core::run_config config = core::preset(core::paper_system::tiny);
  blas::set_compute_mode(blas::compute_mode::float_to_bf16);
  if (resil::active_health_level() == resil::health_level::off) {
    resil::set_health_level(resil::health_level::full);
  }

  std::printf("# DCMESH fault drill: %lld atoms, %lld^3 mesh, %lld QD "
              "steps, BF16 compute, sentinel=%s\n",
              static_cast<long long>(config.atom_count()),
              static_cast<long long>(config.mesh_n),
              static_cast<long long>(config.total_qd_steps()),
              resil::active_health_level() == resil::health_level::full
                  ? "full"
                  : "sample");

  // Resolve the campaign up front: the environment's plan if one is set
  // (malformed text falls back to the built-in drill, mirroring the
  // warn-and-disable env contract), else a NaN into the 9th occurrence
  // of the nonlocal projection — mid-trajectory, wave-function-carrying.
  resil::fault_plan plan;
  bool builtin_plan = true;
  if (const auto text = env_get(resil::kFaultPlanEnvVar)) {
    try {
      plan = resil::parse_fault_plan(*text);
      builtin_plan = false;
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "fault_drill: malformed DCMESH_FAULT_PLAN "
                           "(%s); using the built-in drill\n",
                   error.what());
    }
  }
  if (builtin_plan) {
    plan.rules.push_back({"lfd/nlp_prop/project", 9,
                          resil::fault_kind::nan_value, std::nullopt});
  }

  // Clean reference trajectory: an empty programmatic plan masks any env
  // plan, so the reference really is fault-free.
  resil::set_fault_plan(resil::fault_plan{});
  core::driver clean(config);
  clean.run();
  const lfd::qd_record clean_last = clean.records().back();

  resil::set_fault_plan(plan);
  trace::clear_health_counters();

  core::driver faulty(config);
  faulty.run();
  const lfd::qd_record faulty_last = faulty.records().back();

  const auto& stats = faulty.resilience();
  const unsigned long long injected = resil::injection_count();
  const unsigned long long detected = trace::health_counter("detect");
  const unsigned long long recovered = trace::health_counter("recover");
  const unsigned long long unrecovered =
      trace::health_counter("unrecovered");
  const double ekin_delta = std::abs(faulty_last.ekin - clean_last.ekin);
  const double nexc_delta = std::abs(faulty_last.nexc - clean_last.nexc);

  const bool survived = std::isfinite(faulty_last.ekin) &&
                        std::isfinite(faulty_last.nexc) &&
                        unrecovered == 0 &&
                        faulty.records().size() == clean.records().size();
  // The built-in NaN must be both injected and caught; a user-provided
  // campaign may inject faults benign enough to be masked (e.g. a
  // low-mantissa bitflip swallowed by BF16 rounding), so only survival
  // is required there.
  const bool repaired =
      !builtin_plan ||
      (injected == 1 && detected >= 1 && recovered >= 1);

  std::printf(
      "resil: injected=%llu detected=%llu recovered=%llu unrecovered=%llu "
      "rollbacks=%llu checkpoints=%llu status=%s\n",
      injected, detected, recovered, unrecovered,
      static_cast<unsigned long long>(stats.rollbacks),
      static_cast<unsigned long long>(stats.checkpoints),
      survived && repaired ? "ok" : "FAILED");
  std::printf("final-step deltas vs clean run: |d ekin|=%.3e  "
              "|d nexc|=%.3e\n",
              ekin_delta, nexc_delta);
  if (!stats.last_violation.empty()) {
    std::printf("last step-invariant violation: %s\n",
                stats.last_violation.c_str());
  }
  return survived && repaired ? 0 : 1;
}
