// fault_drill.cpp — resilience drill: inject a fault into a BF16 run and
// watch the sentinel catch and repair it.
//
// Runs the tiny preset twice with the health sentinel at "full": once
// clean, once with a NaN injected into a mid-trajectory nonlocal
// projection GEMM, then prints a one-line resilience summary and the
// final-step observable deltas.  Exit status is nonzero if the faulty
// run failed to recover — CI uses this as the fault-smoke gate.
//
//   ./fault_drill                                     # built-in drill
//   DCMESH_FAULT_PLAN='lfd/*:7:bitflip' ./fault_drill # your own campaign
//   DCMESH_HEALTH=sample ./fault_drill                # cheaper scans
//
// (An env-provided DCMESH_FAULT_PLAN overrides the built-in plan; the
// env grammar is site-glob:call#:kind[:param[:hits]] with kinds
// bitflip|nan|inf|scale|bitflip_a|bitflip_b.  An env-provided
// MKL_BLAS_COMPUTE_MODE overrides the drill's default BF16, so one
// binary sweeps the whole mode grid.  The summary also reports the
// ABFT counters and whether the faulty trajectory is bit-identical to
// the clean one; note the tiny preset's trajectory GEMMs are complex,
// so the checksummed-GEMM tier stays out of this drill's path — the
// closed-loop ABFT campaign lives in abft_drill.)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/core/dcmesh.hpp"
#include "dcmesh/resil/abft.hpp"
#include "dcmesh/resil/fault_plan.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/trace/metrics.hpp"

int main() {
  using namespace dcmesh;

  core::run_config config = core::preset(core::paper_system::tiny);
  // The drill defaults to BF16 (the mode the sentinel was built for),
  // but an explicit MKL_BLAS_COMPUTE_MODE wins so CI can sweep the mode
  // grid with one binary.  (set_compute_mode() would shadow the env.)
  if (!env_get(blas::kComputeModeEnvVar)) {
    blas::set_compute_mode(blas::compute_mode::float_to_bf16);
  }
  if (resil::active_health_level() == resil::health_level::off) {
    resil::set_health_level(resil::health_level::full);
  }

  std::printf("# DCMESH fault drill: %lld atoms, %lld^3 mesh, %lld QD "
              "steps, %s compute, sentinel=%s, abft=%s\n",
              static_cast<long long>(config.atom_count()),
              static_cast<long long>(config.mesh_n),
              static_cast<long long>(config.total_qd_steps()),
              std::string(blas::name(blas::active_compute_mode())).c_str(),
              resil::active_health_level() == resil::health_level::full
                  ? "full"
                  : "sample",
              std::string(resil::name(resil::active_abft_mode())).c_str());

  // Resolve the campaign up front: the environment's plan if one is set
  // (malformed text falls back to the built-in drill, mirroring the
  // warn-and-disable env contract), else a NaN into the 9th occurrence
  // of the nonlocal projection — mid-trajectory, wave-function-carrying.
  resil::fault_plan plan;
  bool builtin_plan = true;
  if (const auto text = env_get(resil::kFaultPlanEnvVar)) {
    try {
      plan = resil::parse_fault_plan(*text);
      builtin_plan = false;
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "fault_drill: malformed DCMESH_FAULT_PLAN "
                           "(%s); using the built-in drill\n",
                   error.what());
    }
  }
  if (builtin_plan) {
    plan.rules.push_back({"lfd/nlp_prop/project", 9,
                          resil::fault_kind::nan_value, std::nullopt});
  }

  // Clean reference trajectory: an empty programmatic plan masks any env
  // plan, so the reference really is fault-free.
  resil::set_fault_plan(resil::fault_plan{});
  core::driver clean(config);
  clean.run();
  const lfd::qd_record clean_last = clean.records().back();

  resil::set_fault_plan(plan);
  trace::clear_health_counters();

  core::driver faulty(config);
  faulty.run();
  const lfd::qd_record faulty_last = faulty.records().back();

  const auto& stats = faulty.resilience();
  const unsigned long long injected = resil::injection_count();
  const unsigned long long detected = trace::health_counter("detect");
  const unsigned long long recovered = trace::health_counter("recover");
  const unsigned long long unrecovered =
      trace::health_counter("unrecovered");
  const unsigned long long abft_checked =
      trace::health_counter("abft_check");
  const unsigned long long abft_detected =
      trace::health_counter("abft_detect");
  const unsigned long long abft_corrected =
      trace::health_counter("abft_correct");
  const unsigned long long abft_escalated =
      trace::health_counter("abft_escalate");
  const double ekin_delta = std::abs(faulty_last.ekin - clean_last.ekin);
  const double nexc_delta = std::abs(faulty_last.nexc - clean_last.nexc);

  // Bit-level trajectory comparison: with DCMESH_ABFT=correct and an
  // input-space fault, the corrected run must replay the clean one
  // EXACTLY — every observable of every step, compared bitwise.
  bool bitwise_identical =
      faulty.records().size() == clean.records().size();
  if (bitwise_identical) {
    for (std::size_t i = 0; i < clean.records().size(); ++i) {
      if (std::memcmp(&clean.records()[i], &faulty.records()[i],
                      sizeof(lfd::qd_record)) != 0) {
        bitwise_identical = false;
        break;
      }
    }
  }

  const bool survived = std::isfinite(faulty_last.ekin) &&
                        std::isfinite(faulty_last.nexc) &&
                        unrecovered == 0 &&
                        faulty.records().size() == clean.records().size();
  // The built-in NaN must be both injected and caught; a user-provided
  // campaign may inject faults benign enough to be masked (e.g. a
  // low-mantissa bitflip swallowed by BF16 rounding), so only survival
  // is required there.
  const bool repaired =
      !builtin_plan ||
      (injected == 1 && detected >= 1 && recovered >= 1);

  std::printf(
      "resil: injected=%llu detected=%llu recovered=%llu unrecovered=%llu "
      "rollbacks=%llu checkpoints=%llu status=%s\n",
      injected, detected, recovered, unrecovered,
      static_cast<unsigned long long>(stats.rollbacks),
      static_cast<unsigned long long>(stats.checkpoints),
      survived && repaired ? "ok" : "FAILED");
  std::printf("abft: checked=%llu detected=%llu corrected=%llu "
              "escalated=%llu\n",
              abft_checked, abft_detected, abft_corrected, abft_escalated);
  std::printf("final-step deltas vs clean run: |d ekin|=%.3e  "
              "|d nexc|=%.3e  bitwise=%s\n",
              ekin_delta, nexc_delta,
              bitwise_identical ? "identical" : "divergent");
  if (!stats.last_violation.empty()) {
    std::printf("last step-invariant violation: %s\n",
                stats.last_violation.c_str());
  }
  return survived && repaired ? 0 : 1;
}
