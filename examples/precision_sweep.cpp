// precision_sweep.cpp — the paper's methodology in one example.
//
// Runs the same scaled simulation under every BLAS compute mode, reports
// the deviation of the three key observables from the FP32 reference
// (paper Figs 1-2), and prints the speedup each mode would deliver on a
// Max 1550 stack according to the device model (paper Fig 3a) — accuracy
// and performance side by side, which is the paper's entire trade-off.

#include <cstdio>
#include <map>

#include "dcmesh/common/stats.hpp"
#include "dcmesh/common/table.hpp"
#include "dcmesh/core/dcmesh.hpp"

int main() {
  using namespace dcmesh;

  core::run_config config = core::preset(core::paper_system::pto40_scaled);
  config.series = 1;
  config.qd_steps_per_series = 120;
  std::printf("Precision sweep: %d atoms, %lld^3 mesh, %zu orbitals, %d QD "
              "steps per mode\n\n",
              config.atom_count(), static_cast<long long>(config.mesh_n),
              config.norb, config.total_qd_steps());

  const auto run_mode = [&](blas::compute_mode mode) {
    blas::scoped_compute_mode scope(mode);
    core::driver sim(config);
    sim.run();
    return sim.records();
  };

  std::printf("running FP32 reference...\n");
  const auto reference = run_mode(blas::compute_mode::standard);
  const auto ref_ekin = core::extract_column(reference, "ekin");
  const auto ref_nexc = core::extract_column(reference, "nexc");
  const auto ref_javg = core::extract_column(reference, "javg");

  const xehpc::device_spec spec;
  const xehpc::calibration cal = xehpc::default_calibration();
  const xehpc::system_shape paper_sys{96LL * 96 * 96, 1024, 432};
  const double t_fp32 = xehpc::model_series_seconds(
      spec, cal, paper_sys,
      {xehpc::gemm_precision::fp32, blas::compute_mode::standard}, 500);

  text_table table({"Mode", "max dev ekin (Ha)", "max dev nexc",
                    "max dev javg (a.u.)", "modeled Max-1550 speedup"});
  for (blas::compute_mode mode :
       {blas::compute_mode::float_to_bf16,
        blas::compute_mode::float_to_bf16x2,
        blas::compute_mode::float_to_bf16x3,
        blas::compute_mode::float_to_tf32,
        blas::compute_mode::complex_3m}) {
    std::printf("running %s...\n", std::string(blas::name(mode)).c_str());
    const auto records = run_mode(mode);
    const double t_mode = xehpc::model_series_seconds(
        spec, cal, paper_sys, {xehpc::gemm_precision::fp32, mode}, 500);
    table.add_row(
        {std::string(blas::name(mode)),
         fmt_sci(max_abs_deviation(core::extract_column(records, "ekin"),
                                   ref_ekin)),
         fmt_sci(max_abs_deviation(core::extract_column(records, "nexc"),
                                   ref_nexc)),
         fmt_sci(max_abs_deviation(core::extract_column(records, "javg"),
                                   ref_javg)),
         fmt_fixed(t_fp32 / t_mode, 2) + "x"});
  }
  std::printf("\n");
  table.print();
  std::printf(
      "\nThe paper's conclusion in one table: BF16 buys the most speed for "
      "the most (still small) deviation; BF16x3 and Complex_3m are nearly "
      "free numerically but buy much less time.\n");
  return 0;
}
