// phonon_dos.cpp — vibrational density of states from the ionic dynamics.
//
// The classic MD route: equilibrate the supercell with a thermostat, run
// NVE dynamics, accumulate the velocity autocorrelation function (VACF),
// and transform it — the peaks of the VACF power spectrum are the phonon
// frequencies of the model lead-titanate force field.  Pure QXMD: no
// electronic structure in the loop, which also demonstrates the MD
// substrate standing alone.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "dcmesh/common/spectrum.hpp"
#include "dcmesh/common/table.hpp"
#include "dcmesh/common/units.hpp"
#include "dcmesh/qxmd/supercell.hpp"
#include "dcmesh/qxmd/thermostat.hpp"
#include "dcmesh/qxmd/verlet.hpp"
#include "dcmesh/qxmd/xyz.hpp"

int main() {
  using namespace dcmesh;

  auto system = qxmd::build_pto_supercell(2);
  qxmd::seed_velocities(system, 300.0, 42);
  const double dt = 8.0;  // a.t.u. (~0.19 fs): resolves the O modes
  qxmd::verlet_integrator integrator(qxmd::pair_potential{}, dt);
  integrator.initialize(system);

  // Equilibrate with the Berendsen thermostat, then free NVE run.
  const qxmd::berendsen_thermostat thermostat(300.0, 40.0);
  for (int i = 0; i < 1500; ++i) {
    integrator.step(system);
    thermostat.apply(system, dt);
  }
  std::printf("equilibrated at T = %.0f K\n",
              qxmd::instantaneous_temperature(system));

  // Production: record x-velocities of every Pb and O atom each step.
  const int steps = 4096;
  std::vector<std::size_t> pb_atoms, o_atoms;
  for (std::size_t i = 0; i < system.size(); ++i) {
    if (system.atoms[i].kind == qxmd::species::pb) pb_atoms.push_back(i);
    if (system.atoms[i].kind == qxmd::species::o) o_atoms.push_back(i);
  }
  std::vector<std::vector<double>> tr_pb(pb_atoms.size()),
      tr_o(o_atoms.size());
  for (auto& t : tr_pb) t.resize(steps);
  for (auto& t : tr_o) t.resize(steps);
  for (int s = 0; s < steps; ++s) {
    integrator.step(system);
    for (std::size_t i = 0; i < pb_atoms.size(); ++i) {
      tr_pb[i][static_cast<std::size_t>(s)] =
          system.atoms[pb_atoms[i]].velocity[0];
    }
    for (std::size_t i = 0; i < o_atoms.size(); ++i) {
      tr_o[i][static_cast<std::size_t>(s)] =
          system.atoms[o_atoms[i]].velocity[0];
    }
  }
  std::printf("production done at T = %.0f K (NVE)\n",
              qxmd::instantaneous_temperature(system));

  // Species-projected vibrational DOS: sum of per-atom velocity power
  // spectra (summing spectra, not velocities, so modes do not cancel).
  const auto species_dos = [&](const std::vector<std::vector<double>>& tr) {
    std::vector<double> dos;
    for (const auto& series : tr) {
      const auto p = power_spectrum(series, true);
      if (dos.empty()) dos.assign(p.size(), 0.0);
      for (std::size_t k = 0; k < p.size(); ++k) dos[k] += p[k];
    }
    return dos;
  };
  const auto dos_pb = species_dos(tr_pb);
  const auto dos_o = species_dos(tr_o);

  // Report dominant mode and spectral centroid in THz
  // (1 a.t.u.^-1 = 1000/atu_in_fs THz ~ 41342 THz per angular a.t.u.^-1
  // after the 2 pi).
  const double nu_to_thz = 1000.0 / units::atu_in_fs;
  const auto report = [&](const char* label,
                          const std::vector<double>& dos) {
    std::size_t peak = 2;
    double centroid_num = 0.0, centroid_den = 0.0;
    for (std::size_t k = 2; k < dos.size(); ++k) {
      if (dos[k] > dos[peak]) peak = k;
      const double omega =
          bin_angular_frequency(k, dt, static_cast<std::size_t>(steps));
      centroid_num += omega * dos[k];
      centroid_den += dos[k];
    }
    const double omega_peak =
        bin_angular_frequency(peak, dt, static_cast<std::size_t>(steps));
    const double centroid = centroid_num / centroid_den;
    std::printf("%-3s dominant mode %.2f THz (bin %zu), spectral centroid "
                "%.2f THz\n",
                label, omega_peak / (2 * 3.14159265) * nu_to_thz, peak,
                centroid / (2 * 3.14159265) * nu_to_thz);
    return centroid;
  };
  const double c_pb = report("Pb", dos_pb);
  const double c_o = report("O", dos_o);

  std::printf(
      "\nExpected physics: oxygen (16 amu) vibrates at higher frequency "
      "than lead (207 amu) — omega ~ sqrt(k/m) suggests ~3.6x for equal "
      "stiffness.  Observed centroid ratio O/Pb: %.2f\n", c_o / c_pb);

  // Drop the final frame as extended XYZ for visualization tools.
  std::ostringstream frame;
  qxmd::write_xyz_frame(frame, system, steps * dt);
  std::printf("\nfinal trajectory frame (extended XYZ, first 3 lines):\n");
  std::istringstream lines(frame.str());
  std::string line;
  for (int i = 0; i < 3 && std::getline(lines, line); ++i) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}
