// hhg_spectrum.cpp — high-harmonic generation from the driven current.
//
// A strong laser pulse drives a nonlinear current in the solid; the
// emitted spectrum |FFT(j)|^2 shows peaks at odd harmonics of the drive
// frequency (inversion symmetry suppresses the even ones).  This example
// runs the scaled supercell under a strong pulse, transforms javg(t), and
// prints the harmonic ladder — the classic strong-field observable built
// entirely from the public API.

#include <cmath>
#include <cstdio>

#include "dcmesh/common/spectrum.hpp"
#include "dcmesh/common/table.hpp"
#include "dcmesh/core/dcmesh.hpp"

int main() {
  using namespace dcmesh;

  // Long window (32 a.t.u. -> d_omega ~ 0.2 Ha) on a lighter mesh so the
  // harmonic ladder is actually resolvable; many-cycle pulse for sharp
  // comb lines.
  core::run_config config = core::preset(core::paper_system::pto40_scaled);
  config.mesh_n = 12;
  config.norb = 24;
  config.nocc = 12;
  config.series = 2;
  config.qd_steps_per_series = 800;  // 1600 steps = 32 a.t.u.
  config.pulse.e0 = 0.6;        // strong drive -> nonlinear response
  config.pulse.omega = 0.9;     // ~4.6 bins per harmonic at this window
  config.pulse.t_center = 16.0;
  config.pulse.sigma = 6.0;

  std::printf("HHG run: %d atoms, %lld^3 mesh, %zu orbitals, %d QD steps, "
              "drive omega = %.2f Ha, E0 = %.2f a.u.\n",
              config.atom_count(), static_cast<long long>(config.mesh_n),
              config.norb, config.total_qd_steps(), config.pulse.omega,
              config.pulse.e0);

  core::driver sim(config);
  sim.run();
  const auto javg = core::extract_column(sim.records(), "javg");
  const auto spectrum = power_spectrum(javg, /*hann_window=*/true);
  const std::size_t n = javg.size();

  // Harmonic ladder: spectral intensity at integer multiples of omega.
  text_table table({"Harmonic", "omega (Ha)", "bin", "intensity",
                    "log10(I/I_1)"});
  const std::size_t fundamental =
      nearest_bin(config.pulse.omega, config.dt, n);
  const double i1 = std::max(spectrum[fundamental], 1e-300);
  for (int h = 1; h <= 7; ++h) {
    const double omega_h = h * config.pulse.omega;
    const std::size_t bin = nearest_bin(omega_h, config.dt, n);
    if (bin >= spectrum.size()) break;
    // Take the local max over +-1 bin (finite windowing).
    double intensity = spectrum[bin];
    if (bin > 0) intensity = std::max(intensity, spectrum[bin - 1]);
    if (bin + 1 < spectrum.size()) {
      intensity = std::max(intensity, spectrum[bin + 1]);
    }
    table.add_row({std::to_string(h), fmt(omega_h, 3), std::to_string(bin),
                   fmt_sci(intensity, 2),
                   fmt_fixed(std::log10(intensity / i1), 2)});
  }
  table.print();

  std::printf(
      "\nExpected physics: intensity falls off the harmonic ladder, with "
      "odd harmonics (3, 5, ...) standing above their even neighbours in "
      "a (near-)inversion-symmetric crystal.\n");
  return 0;
}
