// demoblas.cpp — a deliberately naive stand-in "system BLAS"
// (libdemoblas.so).
//
// intercept_demo links against THIS library, so at build time it knows
// only the standard BLAS names (cblas_sgemm, dgemm_, ...), exactly like
// a binary built against OpenBLAS.  Run plainly, these triple loops
// execute; run under LD_PRELOAD=libdcmesh_intercept.so the dynamic
// linker resolves the same names to the dcmesh shim first and the whole
// dcmesh engine takes over — which is the entire point of the demo.
// Nothing here depends on dcmesh.

#include <complex>

namespace {

template <typename T>
T op_elem(const T* x, int ld, int row, int col, char trans) {
  switch (trans) {
    case 'N': case 'n': return x[row + static_cast<long>(col) * ld];
    case 'T': case 't': return x[col + static_cast<long>(row) * ld];
    default:  // 'C'
      if constexpr (std::is_same_v<T, std::complex<float>> ||
                    std::is_same_v<T, std::complex<double>>) {
        return std::conj(x[col + static_cast<long>(row) * ld]);
      } else {
        return x[col + static_cast<long>(row) * ld];
      }
  }
}

/// Column-major C <- alpha*op(A)*op(B) + beta*C, no blocking, no threads.
template <typename T>
void naive_gemm(char transa, char transb, int m, int n, int k, T alpha,
                const T* a, int lda, const T* b, int ldb, T beta, T* c,
                int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      T acc{};
      for (int p = 0; p < k; ++p) {
        acc += op_elem(a, lda, i, p, transa) * op_elem(b, ldb, p, j, transb);
      }
      T& out = c[i + static_cast<long>(j) * ldc];
      out = alpha * acc + beta * out;
    }
  }
}

char cblas_trans(int t) { return t == 112 ? 'T' : (t == 113 ? 'C' : 'N'); }

/// CBLAS layout handling: row-major forwards through the transpose
/// identity (swap operands and m/n).
template <typename T>
void cblas_gemm(int layout, int transa, int transb, int m, int n, int k,
                T alpha, const T* a, int lda, const T* b, int ldb, T beta,
                T* c, int ldc) {
  if (layout == 101) {  // row-major
    naive_gemm<T>(cblas_trans(transb), cblas_trans(transa), n, m, k, alpha,
                  b, ldb, a, lda, beta, c, ldc);
  } else {
    naive_gemm<T>(cblas_trans(transa), cblas_trans(transb), m, n, k, alpha,
                  a, lda, b, ldb, beta, c, ldc);
  }
}

template <typename T>
void cblas_gemm_batch(int layout, int transa, int transb, int m, int n,
                      int k, T alpha, const T* a, int lda, int stride_a,
                      const T* b, int ldb, int stride_b, T beta, T* c,
                      int ldc, int stride_c, int batch) {
  for (int i = 0; i < batch; ++i) {
    cblas_gemm<T>(layout, transa, transb, m, n, k, alpha,
                  a + static_cast<long>(i) * stride_a, lda,
                  b + static_cast<long>(i) * stride_b, ldb, beta,
                  c + static_cast<long>(i) * stride_c, ldc);
  }
}

}  // namespace

extern "C" {

void cblas_sgemm(int layout, int transa, int transb, int m, int n, int k,
                 float alpha, const float* a, int lda, const float* b,
                 int ldb, float beta, float* c, int ldc) {
  cblas_gemm<float>(layout, transa, transb, m, n, k, alpha, a, lda, b, ldb,
                    beta, c, ldc);
}

void cblas_dgemm(int layout, int transa, int transb, int m, int n, int k,
                 double alpha, const double* a, int lda, const double* b,
                 int ldb, double beta, double* c, int ldc) {
  cblas_gemm<double>(layout, transa, transb, m, n, k, alpha, a, lda, b,
                     ldb, beta, c, ldc);
}

void cblas_cgemm(int layout, int transa, int transb, int m, int n, int k,
                 const void* alpha, const void* a, int lda, const void* b,
                 int ldb, const void* beta, void* c, int ldc) {
  using C = std::complex<float>;
  cblas_gemm<C>(layout, transa, transb, m, n, k,
                *static_cast<const C*>(alpha), static_cast<const C*>(a),
                lda, static_cast<const C*>(b), ldb,
                *static_cast<const C*>(beta), static_cast<C*>(c), ldc);
}

void cblas_zgemm(int layout, int transa, int transb, int m, int n, int k,
                 const void* alpha, const void* a, int lda, const void* b,
                 int ldb, const void* beta, void* c, int ldc) {
  using Z = std::complex<double>;
  cblas_gemm<Z>(layout, transa, transb, m, n, k,
                *static_cast<const Z*>(alpha), static_cast<const Z*>(a),
                lda, static_cast<const Z*>(b), ldb,
                *static_cast<const Z*>(beta), static_cast<Z*>(c), ldc);
}

void cblas_sgemm_batch_strided(int layout, int transa, int transb, int m,
                               int n, int k, float alpha, const float* a,
                               int lda, int stride_a, const float* b,
                               int ldb, int stride_b, float beta, float* c,
                               int ldc, int stride_c, int batch) {
  cblas_gemm_batch<float>(layout, transa, transb, m, n, k, alpha, a, lda,
                          stride_a, b, ldb, stride_b, beta, c, ldc,
                          stride_c, batch);
}

void cblas_dgemm_batch_strided(int layout, int transa, int transb, int m,
                               int n, int k, double alpha, const double* a,
                               int lda, int stride_a, const double* b,
                               int ldb, int stride_b, double beta,
                               double* c, int ldc, int stride_c,
                               int batch) {
  cblas_gemm_batch<double>(layout, transa, transb, m, n, k, alpha, a, lda,
                           stride_a, b, ldb, stride_b, beta, c, ldc,
                           stride_c, batch);
}

void sgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const float* alpha, const float* a,
            const int* lda, const float* b, const int* ldb,
            const float* beta, float* c, const int* ldc) {
  naive_gemm<float>(*transa, *transb, *m, *n, *k, *alpha, a, *lda, b, *ldb,
                    *beta, c, *ldc);
}

void dgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const double* alpha,
            const double* a, const int* lda, const double* b,
            const int* ldb, const double* beta, double* c, const int* ldc) {
  naive_gemm<double>(*transa, *transb, *m, *n, *k, *alpha, a, *lda, b,
                     *ldb, *beta, c, *ldc);
}

void cgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const void* alpha, const void* a,
            const int* lda, const void* b, const int* ldb, const void* beta,
            void* c, const int* ldc) {
  using C = std::complex<float>;
  naive_gemm<C>(*transa, *transb, *m, *n, *k, *static_cast<const C*>(alpha),
                static_cast<const C*>(a), *lda, static_cast<const C*>(b),
                *ldb, *static_cast<const C*>(beta), static_cast<C*>(c),
                *ldc);
}

void zgemm_(const char* transa, const char* transb, const int* m,
            const int* n, const int* k, const void* alpha, const void* a,
            const int* lda, const void* b, const int* ldb, const void* beta,
            void* c, const int* ldc) {
  using Z = std::complex<double>;
  naive_gemm<Z>(*transa, *transb, *m, *n, *k, *static_cast<const Z*>(alpha),
                static_cast<const Z*>(a), *lda, static_cast<const Z*>(b),
                *ldb, *static_cast<const Z*>(beta), static_cast<Z*>(c),
                *ldc);
}

}  // extern "C"
