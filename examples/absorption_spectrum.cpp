// absorption_spectrum.cpp — optical absorption by the delta-kick method.
//
// The linear-response route to the absorption spectrum: apply an
// impulsive momentum kick e^{i kappa z} to the ground state, propagate
// field-free, record the dipole moment d(t), and transform — peaks of
// |d(omega)|^2 sit at the allowed electronic transition energies.  A
// purely public-API example: engine + delta kick + dipole observable +
// power spectrum.

#include <cmath>
#include <cstdio>

#include "dcmesh/common/spectrum.hpp"
#include "dcmesh/common/table.hpp"
#include "dcmesh/lfd/engine.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/lfd/observables.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/qxmd/supercell.hpp"

int main() {
  using namespace dcmesh;

  const auto atoms = qxmd::build_pto_supercell(2, qxmd::kPtoLatticeBohr,
                                               0.05, 1234);
  const mesh::grid3d grid = mesh::grid3d::cubic(12, 2 * 7.37 / 12.0);
  const std::size_t norb = 16, nocc = 8;
  const int steps = 1500;  // 30 a.t.u. window -> d_omega ~ 0.21 Ha
  const double kappa = 0.05;  // weak kick: linear-response regime

  std::printf("Delta-kick absorption: %zu atoms, %lld^3 mesh, %zu orbitals, "
              "kappa = %.3f, %d field-free QD steps\n",
              atoms.size(), static_cast<long long>(grid.nx), norb, kappa,
              steps);

  const auto init = lfd::initialize_ground_state(grid, atoms, norb, nocc,
                                                 mesh::fd_order::fourth);
  lfd::lfd_options options;
  options.dt = 0.02;
  options.v_nl = 0.05;
  options.pulse.e0 = 0.0;  // field-free: the kick supplies the impulse
  lfd::lfd_engine<double> engine(grid, options, init.psi, init.occupations,
                                 nocc,
                                 lfd::build_local_potential(grid, atoms));

  engine.apply_delta_kick(kappa);
  std::vector<double> dipole(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    (void)engine.qd_step();
    dipole[static_cast<std::size_t>(i)] = lfd::dipole_moment<double>(
        grid, options.pulse.polarization_axis, engine.psi(),
        engine.occupations(), grid.dv());
  }

  const auto spectrum = power_spectrum(dipole, true);
  // Report the strongest absorption lines and compare them with the
  // Kohn-Sham transition energies of the initial SCF spectrum.
  text_table table({"omega (Ha)", "intensity", "near KS gap (Ha)"});
  std::vector<std::size_t> peaks;
  for (std::size_t k = 2; k + 1 < spectrum.size(); ++k) {
    if (spectrum[k] > spectrum[k - 1] && spectrum[k] > spectrum[k + 1]) {
      peaks.push_back(k);
    }
  }
  std::sort(peaks.begin(), peaks.end(), [&](std::size_t a, std::size_t b) {
    return spectrum[a] > spectrum[b];
  });
  if (peaks.size() > 5) peaks.resize(5);
  std::sort(peaks.begin(), peaks.end());
  for (std::size_t k : peaks) {
    const double omega =
        bin_angular_frequency(k, options.dt, dipole.size());
    // Closest occupied->unoccupied KS gap.
    double best_gap = 0.0, best_err = 1e30;
    for (std::size_t o = 0; o < nocc; ++o) {
      for (std::size_t u = nocc; u < norb; ++u) {
        const double gap = init.band_energies[u] - init.band_energies[o];
        if (std::abs(gap - omega) < best_err) {
          best_err = std::abs(gap - omega);
          best_gap = gap;
        }
      }
    }
    table.add_row({fmt(omega, 3), fmt_sci(spectrum[k], 2),
                   fmt(best_gap, 3)});
  }
  table.print();
  std::printf(
      "\nExpected physics: absorption peaks line up with occupied->"
      "unoccupied Kohn-Sham transition energies (shifted slightly by the "
      "nonlocal correction).\n");
  return 0;
}
