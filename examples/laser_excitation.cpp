// laser_excitation.cpp — the domain scenario the paper's introduction
// motivates: laser-induced excitation dynamics in lead titanate ("one step
// towards the development of super capacitors", Sec. IV-E).
//
// Sweeps the laser peak field E0 and reports how many electrons get
// excited, the peak current density driven through the supercell, and the
// deposited excitation energy — a small fluence study built on the public
// driver API.

#include <cstdio>

#include "dcmesh/common/table.hpp"
#include "dcmesh/core/dcmesh.hpp"

int main() {
  using namespace dcmesh;

  core::run_config base = core::preset(core::paper_system::pto40_scaled);
  base.series = 1;
  base.qd_steps_per_series = 250;  // covers the whole pulse (centre 6 a.t.u.)

  std::printf("Laser fluence sweep on the %d-atom PbTiO3 supercell "
              "(%lld^3 mesh, %zu orbitals, %d QD steps, pulse omega = %.2f "
              "Ha)\n\n",
              base.atom_count(), static_cast<long long>(base.mesh_n),
              base.norb, base.total_qd_steps(), base.pulse.omega);

  text_table table({"E0 (a.u.)", "peak |A|", "final nexc", "peak |javg|",
                    "eexc (Ha)"});
  for (double e0 : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    core::run_config config = base;
    config.pulse.e0 = e0;
    core::driver sim(config);
    sim.run();

    double peak_a = 0.0, peak_j = 0.0;
    for (const auto& r : sim.records()) {
      peak_a = std::max(peak_a, r.aext);
      peak_j = std::max(peak_j, std::abs(r.javg));
    }
    const auto& last = sim.records().back();
    table.add_row({fmt(e0, 3), fmt(peak_a, 3), fmt_sci(last.nexc, 3),
                   fmt_sci(peak_j, 3), fmt_sci(last.eexc, 3)});
    std::printf("E0 = %-5.2f done (final nexc %.3e)\n", e0, last.nexc);
  }
  std::printf("\n");
  table.print();
  std::printf(
      "\nExpected physics: no field, no excitation; excitation and driven "
      "current grow steeply (perturbatively ~E0^2) with fluence.\n");
  return 0;
}
