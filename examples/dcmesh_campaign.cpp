// dcmesh_campaign.cpp — the campaign farm driver: sharded precision
// sweeps over one shared wisdom store.
//
// Expands a sweep deck (or --set axes) into a run matrix, shards it over
// a bounded pool of dcehd worker processes, and writes an aggregate
// BENCH_campaign.json plus a resumable, checksummed manifest — killing
// the campaign and re-invoking the same command continues where it
// stopped, skipping completed runs.
//
// Usage:
//   dcmesh_campaign <sweep.deck> [options]
//   dcmesh_campaign --set KEY=v1,v2 [--set ...] [options]
// Options:
//   --out <dir>       campaign directory           (default campaign_out)
//   --driver <path>   dcehd-compatible binary      (default: dcehd beside
//                                                   this executable)
//   --workers <n>     worker pool size             (default: deck, else 2)
//   --timeout <sec>   per-run wall budget          (default: deck, else 300)
//   --wisdom <path>   shared wisdom store          (default <out>/wisdom.jsonl)
//   --preset <name>   base config preset           (overrides the deck's)
//   --set KEY=v1,v2   add a sweep axis (deck key or DCMESH_*/MKL_* env)
//   --no-scout        skip the cold-store scout run
//   --dry-run         print the run matrix and exit
//
// Example (a Table VI-style mode sweep, eight runs over four workers):
//   dcmesh_campaign --set MKL_BLAS_COMPUTE_MODE=STANDARD,FLOAT_TO_BF16X2 \
//       --set mesh_n=8,12 --set pulse_e0=0.05,0.1 --workers 4

#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dcmesh/core/presets.hpp"
#include "dcmesh/farm/report.hpp"
#include "dcmesh/farm/runner.hpp"
#include "dcmesh/farm/sweep.hpp"

namespace {

using namespace dcmesh;

int usage() {
  std::fprintf(
      stderr,
      "usage: dcmesh_campaign <sweep.deck> [options]\n"
      "       dcmesh_campaign --set KEY=v1,v2 [--set ...] [options]\n"
      "options: --out <dir> --driver <path> --workers <n> "
      "--timeout <sec>\n"
      "         --wisdom <path> --preset <name> --set KEY=v1,v2 "
      "--no-scout --dry-run\n");
  return 2;
}

/// Default driver: the dcehd binary installed beside this executable.
std::string sibling_driver(const char* argv0) {
  std::string path(argv0 != nullptr ? argv0 : "");
  const auto slash = path.find_last_of('/');
  return (slash == std::string::npos ? std::string("")
                                     : path.substr(0, slash + 1)) +
         "dcehd";
}

}  // namespace

int main(int argc, char** argv) try {
  std::optional<std::string> deck_path, preset_name;
  std::vector<std::string> set_axes;
  farm::runner_options options;
  options.out_dir = "campaign_out";
  options.workers = 0;           // 0 = deck, else 2
  options.timeout_seconds = 0;   // 0 = deck, else 300
  bool dry_run = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--out") {
      options.out_dir = next();
    } else if (arg == "--driver") {
      options.driver = next();
    } else if (arg == "--workers") {
      options.workers = std::stoi(next());
    } else if (arg == "--timeout") {
      options.timeout_seconds = std::stod(next());
    } else if (arg == "--wisdom") {
      options.wisdom = next();
    } else if (arg == "--preset") {
      preset_name = next();
    } else if (arg == "--set") {
      set_axes.push_back(next());
    } else if (arg == "--no-scout") {
      options.cold_scout = false;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dcmesh_campaign: unknown option %s\n",
                   arg.c_str());
      return usage();
    } else {
      deck_path = arg;
    }
  }
  if (!deck_path && set_axes.empty()) return usage();

  farm::sweep_spec spec;
  if (deck_path) {
    spec = farm::parse_sweep_file(*deck_path);
  } else {
    spec.base = core::preset(core::paper_system::tiny);
  }
  if (preset_name) {
    bool found = false;
    for (const core::paper_system system : core::all_presets()) {
      if (core::name(system) == *preset_name) {
        spec.base = core::preset(system);
        spec.base_name = *preset_name;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("unknown preset '" + *preset_name + "'");
    }
  }
  for (const auto& assignment : set_axes) {
    farm::add_axis(spec, assignment);
  }
  if (options.workers == 0) {
    options.workers = spec.workers > 0 ? spec.workers : 2;
  }
  if (options.timeout_seconds == 0) {
    options.timeout_seconds =
        spec.timeout_seconds > 0 ? spec.timeout_seconds : 300.0;
  }
  if (options.driver.empty()) options.driver = sibling_driver(argv[0]);

  const std::vector<farm::campaign_run> runs = farm::expand(spec);
  if (runs.empty()) {
    std::fprintf(stderr, "dcmesh_campaign: empty run matrix\n");
    return 2;
  }

  if (dry_run) {
    std::printf("campaign: %zu runs (base %s)\n", runs.size(),
                spec.base_name.c_str());
    for (const auto& run : runs) {
      std::printf("  %s  %s\n", run.id.c_str(), run.tag.c_str());
    }
    return 0;
  }

  std::fprintf(stderr,
               "dcmesh_campaign: %zu runs over %d workers, driver %s, "
               "wisdom %s\n",
               runs.size(), options.workers, options.driver.c_str(),
               options.wisdom.empty()
                   ? (options.out_dir + "/wisdom.jsonl").c_str()
                   : options.wisdom.c_str());

  const farm::campaign_result result = farm::run_campaign(runs, options);

  std::fprintf(stderr,
               "dcmesh_campaign: %zu/%zu complete (%zu resumed, %zu "
               "failed); report: %s/BENCH_campaign.json\n",
               result.completed, result.outcomes.size(), result.resumed,
               result.failed, options.out_dir.c_str());
  return result.ok() ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "dcmesh_campaign: %s\n", e.what());
  return 1;
}
