file(REMOVE_RECURSE
  "CMakeFiles/test_qxmd.dir/qxmd/test_cholesky.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_cholesky.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_davidson.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_davidson.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_eigen.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_eigen.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_pair_potential.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_pair_potential.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_scf.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_scf.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_shadow.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_shadow.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_supercell.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_supercell.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_thermostat.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_thermostat.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_verlet.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_verlet.cpp.o.d"
  "CMakeFiles/test_qxmd.dir/qxmd/test_xyz.cpp.o"
  "CMakeFiles/test_qxmd.dir/qxmd/test_xyz.cpp.o.d"
  "test_qxmd"
  "test_qxmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qxmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
