
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/qxmd/test_cholesky.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_cholesky.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_cholesky.cpp.o.d"
  "/root/repo/tests/qxmd/test_davidson.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_davidson.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_davidson.cpp.o.d"
  "/root/repo/tests/qxmd/test_eigen.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_eigen.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_eigen.cpp.o.d"
  "/root/repo/tests/qxmd/test_pair_potential.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_pair_potential.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_pair_potential.cpp.o.d"
  "/root/repo/tests/qxmd/test_scf.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_scf.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_scf.cpp.o.d"
  "/root/repo/tests/qxmd/test_shadow.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_shadow.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_shadow.cpp.o.d"
  "/root/repo/tests/qxmd/test_supercell.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_supercell.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_supercell.cpp.o.d"
  "/root/repo/tests/qxmd/test_thermostat.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_thermostat.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_thermostat.cpp.o.d"
  "/root/repo/tests/qxmd/test_verlet.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_verlet.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_verlet.cpp.o.d"
  "/root/repo/tests/qxmd/test_xyz.cpp" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_xyz.cpp.o" "gcc" "tests/CMakeFiles/test_qxmd.dir/qxmd/test_xyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcmesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lfd/CMakeFiles/lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/qxmd/CMakeFiles/qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dcmesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/xehpc/CMakeFiles/xehpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcmesh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
