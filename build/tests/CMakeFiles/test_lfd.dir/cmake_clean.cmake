file(REMOVE_RECURSE
  "CMakeFiles/test_lfd.dir/lfd/test_calc_energy.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_calc_energy.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_current.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_current.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_engine.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_engine.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_forces.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_forces.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_hamiltonian.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_hamiltonian.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_nlp_prop.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_nlp_prop.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_observables.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_observables.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_potential.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_potential.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_propagators.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_propagators.cpp.o.d"
  "CMakeFiles/test_lfd.dir/lfd/test_remap_occ.cpp.o"
  "CMakeFiles/test_lfd.dir/lfd/test_remap_occ.cpp.o.d"
  "test_lfd"
  "test_lfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
