# Empty dependencies file for test_lfd.
# This may be replaced when dependencies are built.
