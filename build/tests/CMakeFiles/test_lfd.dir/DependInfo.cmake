
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lfd/test_calc_energy.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_calc_energy.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_calc_energy.cpp.o.d"
  "/root/repo/tests/lfd/test_current.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_current.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_current.cpp.o.d"
  "/root/repo/tests/lfd/test_engine.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_engine.cpp.o.d"
  "/root/repo/tests/lfd/test_forces.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_forces.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_forces.cpp.o.d"
  "/root/repo/tests/lfd/test_hamiltonian.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_hamiltonian.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_hamiltonian.cpp.o.d"
  "/root/repo/tests/lfd/test_nlp_prop.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_nlp_prop.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_nlp_prop.cpp.o.d"
  "/root/repo/tests/lfd/test_observables.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_observables.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_observables.cpp.o.d"
  "/root/repo/tests/lfd/test_potential.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_potential.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_potential.cpp.o.d"
  "/root/repo/tests/lfd/test_propagators.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_propagators.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_propagators.cpp.o.d"
  "/root/repo/tests/lfd/test_remap_occ.cpp" "tests/CMakeFiles/test_lfd.dir/lfd/test_remap_occ.cpp.o" "gcc" "tests/CMakeFiles/test_lfd.dir/lfd/test_remap_occ.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcmesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lfd/CMakeFiles/lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/qxmd/CMakeFiles/qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dcmesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/xehpc/CMakeFiles/xehpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcmesh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
