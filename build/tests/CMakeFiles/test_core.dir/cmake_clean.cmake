file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_checkpoint.cpp.o"
  "CMakeFiles/test_core.dir/core/test_checkpoint.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_driver.cpp.o"
  "CMakeFiles/test_core.dir/core/test_driver.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_hartree.cpp.o"
  "CMakeFiles/test_core.dir/core/test_hartree.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_output.cpp.o"
  "CMakeFiles/test_core.dir/core/test_output.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_presets.cpp.o"
  "CMakeFiles/test_core.dir/core/test_presets.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
