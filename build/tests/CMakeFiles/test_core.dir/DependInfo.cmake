
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_checkpoint.cpp" "tests/CMakeFiles/test_core.dir/core/test_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_checkpoint.cpp.o.d"
  "/root/repo/tests/core/test_config.cpp" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "/root/repo/tests/core/test_driver.cpp" "tests/CMakeFiles/test_core.dir/core/test_driver.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_driver.cpp.o.d"
  "/root/repo/tests/core/test_hartree.cpp" "tests/CMakeFiles/test_core.dir/core/test_hartree.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hartree.cpp.o.d"
  "/root/repo/tests/core/test_output.cpp" "tests/CMakeFiles/test_core.dir/core/test_output.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_output.cpp.o.d"
  "/root/repo/tests/core/test_presets.cpp" "tests/CMakeFiles/test_core.dir/core/test_presets.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_presets.cpp.o.d"
  "/root/repo/tests/core/test_trace.cpp" "tests/CMakeFiles/test_core.dir/core/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcmesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lfd/CMakeFiles/lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/qxmd/CMakeFiles/qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dcmesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/xehpc/CMakeFiles/xehpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcmesh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
