
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_bf16.cpp" "tests/CMakeFiles/test_common.dir/common/test_bf16.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_bf16.cpp.o.d"
  "/root/repo/tests/common/test_env.cpp" "tests/CMakeFiles/test_common.dir/common/test_env.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_env.cpp.o.d"
  "/root/repo/tests/common/test_matrix.cpp" "tests/CMakeFiles/test_common.dir/common/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_matrix.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_spectrum.cpp" "tests/CMakeFiles/test_common.dir/common/test_spectrum.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_spectrum.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_tf32_fp16.cpp" "tests/CMakeFiles/test_common.dir/common/test_tf32_fp16.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_tf32_fp16.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcmesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lfd/CMakeFiles/lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/qxmd/CMakeFiles/qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dcmesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/xehpc/CMakeFiles/xehpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcmesh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
