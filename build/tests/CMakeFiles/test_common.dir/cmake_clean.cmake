file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_bf16.cpp.o"
  "CMakeFiles/test_common.dir/common/test_bf16.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_env.cpp.o"
  "CMakeFiles/test_common.dir/common/test_env.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_matrix.cpp.o"
  "CMakeFiles/test_common.dir/common/test_matrix.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_spectrum.cpp.o"
  "CMakeFiles/test_common.dir/common/test_spectrum.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_tf32_fp16.cpp.o"
  "CMakeFiles/test_common.dir/common/test_tf32_fp16.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
