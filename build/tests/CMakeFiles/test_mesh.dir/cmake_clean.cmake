file(REMOVE_RECURSE
  "CMakeFiles/test_mesh.dir/mesh/test_grid.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_grid.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_laser.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_laser.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_poisson.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_poisson.cpp.o.d"
  "CMakeFiles/test_mesh.dir/mesh/test_stencil.cpp.o"
  "CMakeFiles/test_mesh.dir/mesh/test_stencil.cpp.o.d"
  "test_mesh"
  "test_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
