
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blas/test_cblas_compat.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_cblas_compat.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_cblas_compat.cpp.o.d"
  "/root/repo/tests/blas/test_compute_mode.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_compute_mode.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_compute_mode.cpp.o.d"
  "/root/repo/tests/blas/test_gemm_batch.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_gemm_batch.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_gemm_batch.cpp.o.d"
  "/root/repo/tests/blas/test_gemm_complex.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_gemm_complex.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_gemm_complex.cpp.o.d"
  "/root/repo/tests/blas/test_gemm_fuzz.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_gemm_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_gemm_fuzz.cpp.o.d"
  "/root/repo/tests/blas/test_gemm_real.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_gemm_real.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_gemm_real.cpp.o.d"
  "/root/repo/tests/blas/test_level1.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_level1.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_level1.cpp.o.d"
  "/root/repo/tests/blas/test_level2_rank_k.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_level2_rank_k.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_level2_rank_k.cpp.o.d"
  "/root/repo/tests/blas/test_split.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_split.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_split.cpp.o.d"
  "/root/repo/tests/blas/test_split_gemm.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_split_gemm.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_split_gemm.cpp.o.d"
  "/root/repo/tests/blas/test_trsm.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_trsm.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_trsm.cpp.o.d"
  "/root/repo/tests/blas/test_verbose.cpp" "tests/CMakeFiles/test_blas.dir/blas/test_verbose.cpp.o" "gcc" "tests/CMakeFiles/test_blas.dir/blas/test_verbose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcmesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lfd/CMakeFiles/lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/qxmd/CMakeFiles/qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dcmesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/xehpc/CMakeFiles/xehpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcmesh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
