file(REMOVE_RECURSE
  "CMakeFiles/test_blas.dir/blas/test_cblas_compat.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_cblas_compat.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_compute_mode.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_compute_mode.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_gemm_batch.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_gemm_batch.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_gemm_complex.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_gemm_complex.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_gemm_fuzz.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_gemm_fuzz.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_gemm_real.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_gemm_real.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_level1.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_level1.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_level2_rank_k.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_level2_rank_k.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_split.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_split.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_split_gemm.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_split_gemm.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_trsm.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_trsm.cpp.o.d"
  "CMakeFiles/test_blas.dir/blas/test_verbose.cpp.o"
  "CMakeFiles/test_blas.dir/blas/test_verbose.cpp.o.d"
  "test_blas"
  "test_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
