file(REMOVE_RECURSE
  "CMakeFiles/test_xehpc.dir/xehpc/test_app_model.cpp.o"
  "CMakeFiles/test_xehpc.dir/xehpc/test_app_model.cpp.o.d"
  "CMakeFiles/test_xehpc.dir/xehpc/test_device.cpp.o"
  "CMakeFiles/test_xehpc.dir/xehpc/test_device.cpp.o.d"
  "CMakeFiles/test_xehpc.dir/xehpc/test_energy.cpp.o"
  "CMakeFiles/test_xehpc.dir/xehpc/test_energy.cpp.o.d"
  "CMakeFiles/test_xehpc.dir/xehpc/test_roofline.cpp.o"
  "CMakeFiles/test_xehpc.dir/xehpc/test_roofline.cpp.o.d"
  "CMakeFiles/test_xehpc.dir/xehpc/test_scaling.cpp.o"
  "CMakeFiles/test_xehpc.dir/xehpc/test_scaling.cpp.o.d"
  "test_xehpc"
  "test_xehpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xehpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
