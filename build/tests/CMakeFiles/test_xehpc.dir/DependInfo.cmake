
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xehpc/test_app_model.cpp" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_app_model.cpp.o" "gcc" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_app_model.cpp.o.d"
  "/root/repo/tests/xehpc/test_device.cpp" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_device.cpp.o" "gcc" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_device.cpp.o.d"
  "/root/repo/tests/xehpc/test_energy.cpp" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_energy.cpp.o" "gcc" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_energy.cpp.o.d"
  "/root/repo/tests/xehpc/test_roofline.cpp" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_roofline.cpp.o" "gcc" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_roofline.cpp.o.d"
  "/root/repo/tests/xehpc/test_scaling.cpp" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_scaling.cpp.o" "gcc" "tests/CMakeFiles/test_xehpc.dir/xehpc/test_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcmesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lfd/CMakeFiles/lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/qxmd/CMakeFiles/qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dcmesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/xehpc/CMakeFiles/xehpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcmesh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
