# Empty dependencies file for test_xehpc.
# This may be replaced when dependencies are built.
