# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;dcmesh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_blas "/root/repo/build/tests/test_blas")
set_tests_properties(test_blas PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;dcmesh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_xehpc "/root/repo/build/tests/test_xehpc")
set_tests_properties(test_xehpc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;40;dcmesh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mesh "/root/repo/build/tests/test_mesh")
set_tests_properties(test_mesh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;48;dcmesh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_qxmd "/root/repo/build/tests/test_qxmd")
set_tests_properties(test_qxmd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;55;dcmesh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lfd "/root/repo/build/tests/test_lfd")
set_tests_properties(test_lfd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;68;dcmesh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;81;dcmesh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;91;dcmesh_add_test;/root/repo/tests/CMakeLists.txt;0;")
