# Empty compiler generated dependencies file for table3_simparams.
# This may be replaced when dependencies are built.
