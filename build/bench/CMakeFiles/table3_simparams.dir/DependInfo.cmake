
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_simparams.cpp" "bench/CMakeFiles/table3_simparams.dir/table3_simparams.cpp.o" "gcc" "bench/CMakeFiles/table3_simparams.dir/table3_simparams.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcmesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lfd/CMakeFiles/lfd.dir/DependInfo.cmake"
  "/root/repo/build/src/qxmd/CMakeFiles/qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dcmesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/xehpc/CMakeFiles/xehpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcmesh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
