file(REMOVE_RECURSE
  "CMakeFiles/table3_simparams.dir/table3_simparams.cpp.o"
  "CMakeFiles/table3_simparams.dir/table3_simparams.cpp.o.d"
  "table3_simparams"
  "table3_simparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_simparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
