# Empty compiler generated dependencies file for table1_peaks.
# This may be replaced when dependencies are built.
