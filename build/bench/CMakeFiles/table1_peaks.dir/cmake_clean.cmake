file(REMOVE_RECURSE
  "CMakeFiles/table1_peaks.dir/table1_peaks.cpp.o"
  "CMakeFiles/table1_peaks.dir/table1_peaks.cpp.o.d"
  "table1_peaks"
  "table1_peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
