# Empty dependencies file for table4_formats.
# This may be replaced when dependencies are built.
