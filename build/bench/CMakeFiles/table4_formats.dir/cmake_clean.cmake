file(REMOVE_RECURSE
  "CMakeFiles/table4_formats.dir/table4_formats.cpp.o"
  "CMakeFiles/table4_formats.dir/table4_formats.cpp.o.d"
  "table4_formats"
  "table4_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
