file(REMOVE_RECURSE
  "CMakeFiles/fig3b_blas_speedup.dir/fig3b_blas_speedup.cpp.o"
  "CMakeFiles/fig3b_blas_speedup.dir/fig3b_blas_speedup.cpp.o.d"
  "fig3b_blas_speedup"
  "fig3b_blas_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_blas_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
