# Empty dependencies file for fig3b_blas_speedup.
# This may be replaced when dependencies are built.
