file(REMOVE_RECURSE
  "CMakeFiles/ext_multistack.dir/ext_multistack.cpp.o"
  "CMakeFiles/ext_multistack.dir/ext_multistack.cpp.o.d"
  "ext_multistack"
  "ext_multistack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multistack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
