# Empty compiler generated dependencies file for ext_multistack.
# This may be replaced when dependencies are built.
