file(REMOVE_RECURSE
  "CMakeFiles/ext_per_call_modes.dir/ext_per_call_modes.cpp.o"
  "CMakeFiles/ext_per_call_modes.dir/ext_per_call_modes.cpp.o.d"
  "ext_per_call_modes"
  "ext_per_call_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_per_call_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
