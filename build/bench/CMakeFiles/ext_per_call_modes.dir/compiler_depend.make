# Empty compiler generated dependencies file for ext_per_call_modes.
# This may be replaced when dependencies are built.
