# Empty compiler generated dependencies file for fig1_accuracy.
# This may be replaced when dependencies are built.
