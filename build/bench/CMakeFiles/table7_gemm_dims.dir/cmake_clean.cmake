file(REMOVE_RECURSE
  "CMakeFiles/table7_gemm_dims.dir/table7_gemm_dims.cpp.o"
  "CMakeFiles/table7_gemm_dims.dir/table7_gemm_dims.cpp.o.d"
  "table7_gemm_dims"
  "table7_gemm_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_gemm_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
