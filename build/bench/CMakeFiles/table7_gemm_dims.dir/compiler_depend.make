# Empty compiler generated dependencies file for table7_gemm_dims.
# This may be replaced when dependencies are built.
