# Empty dependencies file for fig2_current_log.
# This may be replaced when dependencies are built.
