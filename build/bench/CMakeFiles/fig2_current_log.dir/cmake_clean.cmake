file(REMOVE_RECURSE
  "CMakeFiles/fig2_current_log.dir/fig2_current_log.cpp.o"
  "CMakeFiles/fig2_current_log.dir/fig2_current_log.cpp.o.d"
  "fig2_current_log"
  "fig2_current_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_current_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
