file(REMOVE_RECURSE
  "CMakeFiles/fig3a_time_to_solution.dir/fig3a_time_to_solution.cpp.o"
  "CMakeFiles/fig3a_time_to_solution.dir/fig3a_time_to_solution.cpp.o.d"
  "fig3a_time_to_solution"
  "fig3a_time_to_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_time_to_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
