# Empty dependencies file for fig3a_time_to_solution.
# This may be replaced when dependencies are built.
