file(REMOVE_RECURSE
  "CMakeFiles/table2_modes.dir/table2_modes.cpp.o"
  "CMakeFiles/table2_modes.dir/table2_modes.cpp.o.d"
  "table2_modes"
  "table2_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
