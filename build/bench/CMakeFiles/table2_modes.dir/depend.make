# Empty dependencies file for table2_modes.
# This may be replaced when dependencies are built.
