# Empty compiler generated dependencies file for table6_speedup.
# This may be replaced when dependencies are built.
