file(REMOVE_RECURSE
  "CMakeFiles/table6_speedup.dir/table6_speedup.cpp.o"
  "CMakeFiles/table6_speedup.dir/table6_speedup.cpp.o.d"
  "table6_speedup"
  "table6_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
