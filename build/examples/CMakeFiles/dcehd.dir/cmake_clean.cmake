file(REMOVE_RECURSE
  "CMakeFiles/dcehd.dir/dcehd.cpp.o"
  "CMakeFiles/dcehd.dir/dcehd.cpp.o.d"
  "dcehd"
  "dcehd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcehd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
