# Empty compiler generated dependencies file for dcehd.
# This may be replaced when dependencies are built.
