# Empty dependencies file for hhg_spectrum.
# This may be replaced when dependencies are built.
