file(REMOVE_RECURSE
  "CMakeFiles/hhg_spectrum.dir/hhg_spectrum.cpp.o"
  "CMakeFiles/hhg_spectrum.dir/hhg_spectrum.cpp.o.d"
  "hhg_spectrum"
  "hhg_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hhg_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
