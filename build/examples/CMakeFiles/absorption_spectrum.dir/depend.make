# Empty dependencies file for absorption_spectrum.
# This may be replaced when dependencies are built.
