# Empty dependencies file for precision_sweep.
# This may be replaced when dependencies are built.
