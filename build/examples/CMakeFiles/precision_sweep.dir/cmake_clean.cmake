file(REMOVE_RECURSE
  "CMakeFiles/precision_sweep.dir/precision_sweep.cpp.o"
  "CMakeFiles/precision_sweep.dir/precision_sweep.cpp.o.d"
  "precision_sweep"
  "precision_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
