# Empty dependencies file for phonon_dos.
# This may be replaced when dependencies are built.
