file(REMOVE_RECURSE
  "CMakeFiles/phonon_dos.dir/phonon_dos.cpp.o"
  "CMakeFiles/phonon_dos.dir/phonon_dos.cpp.o.d"
  "phonon_dos"
  "phonon_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phonon_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
