file(REMOVE_RECURSE
  "CMakeFiles/laser_excitation.dir/laser_excitation.cpp.o"
  "CMakeFiles/laser_excitation.dir/laser_excitation.cpp.o.d"
  "laser_excitation"
  "laser_excitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laser_excitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
