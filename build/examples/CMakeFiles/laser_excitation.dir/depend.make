# Empty dependencies file for laser_excitation.
# This may be replaced when dependencies are built.
