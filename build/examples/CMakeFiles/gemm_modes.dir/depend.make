# Empty dependencies file for gemm_modes.
# This may be replaced when dependencies are built.
