file(REMOVE_RECURSE
  "CMakeFiles/gemm_modes.dir/gemm_modes.cpp.o"
  "CMakeFiles/gemm_modes.dir/gemm_modes.cpp.o.d"
  "gemm_modes"
  "gemm_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
