file(REMOVE_RECURSE
  "libminimkl.a"
)
