file(REMOVE_RECURSE
  "CMakeFiles/minimkl.dir/src/cblas_compat.cpp.o"
  "CMakeFiles/minimkl.dir/src/cblas_compat.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/compute_mode.cpp.o"
  "CMakeFiles/minimkl.dir/src/compute_mode.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/gemm_api.cpp.o"
  "CMakeFiles/minimkl.dir/src/gemm_api.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/gemm_batch.cpp.o"
  "CMakeFiles/minimkl.dir/src/gemm_batch.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/gemm_complex.cpp.o"
  "CMakeFiles/minimkl.dir/src/gemm_complex.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/gemm_real.cpp.o"
  "CMakeFiles/minimkl.dir/src/gemm_real.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/level1.cpp.o"
  "CMakeFiles/minimkl.dir/src/level1.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/level2.cpp.o"
  "CMakeFiles/minimkl.dir/src/level2.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/rank_k.cpp.o"
  "CMakeFiles/minimkl.dir/src/rank_k.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/split.cpp.o"
  "CMakeFiles/minimkl.dir/src/split.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/trsm.cpp.o"
  "CMakeFiles/minimkl.dir/src/trsm.cpp.o.d"
  "CMakeFiles/minimkl.dir/src/verbose.cpp.o"
  "CMakeFiles/minimkl.dir/src/verbose.cpp.o.d"
  "libminimkl.a"
  "libminimkl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimkl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
