# Empty compiler generated dependencies file for minimkl.
# This may be replaced when dependencies are built.
