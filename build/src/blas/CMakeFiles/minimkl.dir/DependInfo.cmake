
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/src/cblas_compat.cpp" "src/blas/CMakeFiles/minimkl.dir/src/cblas_compat.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/cblas_compat.cpp.o.d"
  "/root/repo/src/blas/src/compute_mode.cpp" "src/blas/CMakeFiles/minimkl.dir/src/compute_mode.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/compute_mode.cpp.o.d"
  "/root/repo/src/blas/src/gemm_api.cpp" "src/blas/CMakeFiles/minimkl.dir/src/gemm_api.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/gemm_api.cpp.o.d"
  "/root/repo/src/blas/src/gemm_batch.cpp" "src/blas/CMakeFiles/minimkl.dir/src/gemm_batch.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/gemm_batch.cpp.o.d"
  "/root/repo/src/blas/src/gemm_complex.cpp" "src/blas/CMakeFiles/minimkl.dir/src/gemm_complex.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/gemm_complex.cpp.o.d"
  "/root/repo/src/blas/src/gemm_real.cpp" "src/blas/CMakeFiles/minimkl.dir/src/gemm_real.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/gemm_real.cpp.o.d"
  "/root/repo/src/blas/src/level1.cpp" "src/blas/CMakeFiles/minimkl.dir/src/level1.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/level1.cpp.o.d"
  "/root/repo/src/blas/src/level2.cpp" "src/blas/CMakeFiles/minimkl.dir/src/level2.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/level2.cpp.o.d"
  "/root/repo/src/blas/src/rank_k.cpp" "src/blas/CMakeFiles/minimkl.dir/src/rank_k.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/rank_k.cpp.o.d"
  "/root/repo/src/blas/src/split.cpp" "src/blas/CMakeFiles/minimkl.dir/src/split.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/split.cpp.o.d"
  "/root/repo/src/blas/src/trsm.cpp" "src/blas/CMakeFiles/minimkl.dir/src/trsm.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/trsm.cpp.o.d"
  "/root/repo/src/blas/src/verbose.cpp" "src/blas/CMakeFiles/minimkl.dir/src/verbose.cpp.o" "gcc" "src/blas/CMakeFiles/minimkl.dir/src/verbose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
