file(REMOVE_RECURSE
  "libdcmesh_trace.a"
)
