# Empty compiler generated dependencies file for dcmesh_trace.
# This may be replaced when dependencies are built.
