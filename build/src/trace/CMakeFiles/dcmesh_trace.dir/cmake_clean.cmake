file(REMOVE_RECURSE
  "CMakeFiles/dcmesh_trace.dir/src/unitrace.cpp.o"
  "CMakeFiles/dcmesh_trace.dir/src/unitrace.cpp.o.d"
  "libdcmesh_trace.a"
  "libdcmesh_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcmesh_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
