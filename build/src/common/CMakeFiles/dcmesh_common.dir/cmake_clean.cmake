file(REMOVE_RECURSE
  "CMakeFiles/dcmesh_common.dir/src/env.cpp.o"
  "CMakeFiles/dcmesh_common.dir/src/env.cpp.o.d"
  "CMakeFiles/dcmesh_common.dir/src/rng.cpp.o"
  "CMakeFiles/dcmesh_common.dir/src/rng.cpp.o.d"
  "CMakeFiles/dcmesh_common.dir/src/spectrum.cpp.o"
  "CMakeFiles/dcmesh_common.dir/src/spectrum.cpp.o.d"
  "libdcmesh_common.a"
  "libdcmesh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcmesh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
