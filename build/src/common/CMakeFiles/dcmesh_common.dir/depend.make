# Empty dependencies file for dcmesh_common.
# This may be replaced when dependencies are built.
