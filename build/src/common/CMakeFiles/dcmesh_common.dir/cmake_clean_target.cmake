file(REMOVE_RECURSE
  "libdcmesh_common.a"
)
