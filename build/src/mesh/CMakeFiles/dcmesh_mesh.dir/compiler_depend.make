# Empty compiler generated dependencies file for dcmesh_mesh.
# This may be replaced when dependencies are built.
