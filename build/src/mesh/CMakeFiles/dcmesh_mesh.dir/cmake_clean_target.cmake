file(REMOVE_RECURSE
  "libdcmesh_mesh.a"
)
