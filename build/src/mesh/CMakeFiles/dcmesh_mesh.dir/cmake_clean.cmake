file(REMOVE_RECURSE
  "CMakeFiles/dcmesh_mesh.dir/src/poisson.cpp.o"
  "CMakeFiles/dcmesh_mesh.dir/src/poisson.cpp.o.d"
  "CMakeFiles/dcmesh_mesh.dir/src/stencil.cpp.o"
  "CMakeFiles/dcmesh_mesh.dir/src/stencil.cpp.o.d"
  "libdcmesh_mesh.a"
  "libdcmesh_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcmesh_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
