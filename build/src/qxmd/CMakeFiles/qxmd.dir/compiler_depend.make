# Empty compiler generated dependencies file for qxmd.
# This may be replaced when dependencies are built.
