file(REMOVE_RECURSE
  "libqxmd.a"
)
