
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qxmd/src/atoms.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/atoms.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/atoms.cpp.o.d"
  "/root/repo/src/qxmd/src/cholesky.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/cholesky.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/cholesky.cpp.o.d"
  "/root/repo/src/qxmd/src/davidson.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/davidson.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/davidson.cpp.o.d"
  "/root/repo/src/qxmd/src/eigen.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/eigen.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/eigen.cpp.o.d"
  "/root/repo/src/qxmd/src/pair_potential.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/pair_potential.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/pair_potential.cpp.o.d"
  "/root/repo/src/qxmd/src/scf.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/scf.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/scf.cpp.o.d"
  "/root/repo/src/qxmd/src/shadow.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/shadow.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/shadow.cpp.o.d"
  "/root/repo/src/qxmd/src/supercell.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/supercell.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/supercell.cpp.o.d"
  "/root/repo/src/qxmd/src/thermostat.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/thermostat.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/thermostat.cpp.o.d"
  "/root/repo/src/qxmd/src/verlet.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/verlet.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/verlet.cpp.o.d"
  "/root/repo/src/qxmd/src/xyz.cpp" "src/qxmd/CMakeFiles/qxmd.dir/src/xyz.cpp.o" "gcc" "src/qxmd/CMakeFiles/qxmd.dir/src/xyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
