file(REMOVE_RECURSE
  "CMakeFiles/qxmd.dir/src/atoms.cpp.o"
  "CMakeFiles/qxmd.dir/src/atoms.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/cholesky.cpp.o"
  "CMakeFiles/qxmd.dir/src/cholesky.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/davidson.cpp.o"
  "CMakeFiles/qxmd.dir/src/davidson.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/eigen.cpp.o"
  "CMakeFiles/qxmd.dir/src/eigen.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/pair_potential.cpp.o"
  "CMakeFiles/qxmd.dir/src/pair_potential.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/scf.cpp.o"
  "CMakeFiles/qxmd.dir/src/scf.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/shadow.cpp.o"
  "CMakeFiles/qxmd.dir/src/shadow.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/supercell.cpp.o"
  "CMakeFiles/qxmd.dir/src/supercell.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/thermostat.cpp.o"
  "CMakeFiles/qxmd.dir/src/thermostat.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/verlet.cpp.o"
  "CMakeFiles/qxmd.dir/src/verlet.cpp.o.d"
  "CMakeFiles/qxmd.dir/src/xyz.cpp.o"
  "CMakeFiles/qxmd.dir/src/xyz.cpp.o.d"
  "libqxmd.a"
  "libqxmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qxmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
