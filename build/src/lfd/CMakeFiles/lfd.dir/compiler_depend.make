# Empty compiler generated dependencies file for lfd.
# This may be replaced when dependencies are built.
