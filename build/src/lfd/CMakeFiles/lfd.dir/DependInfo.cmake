
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfd/src/calc_energy.cpp" "src/lfd/CMakeFiles/lfd.dir/src/calc_energy.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/calc_energy.cpp.o.d"
  "/root/repo/src/lfd/src/current.cpp" "src/lfd/CMakeFiles/lfd.dir/src/current.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/current.cpp.o.d"
  "/root/repo/src/lfd/src/engine.cpp" "src/lfd/CMakeFiles/lfd.dir/src/engine.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/engine.cpp.o.d"
  "/root/repo/src/lfd/src/forces.cpp" "src/lfd/CMakeFiles/lfd.dir/src/forces.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/forces.cpp.o.d"
  "/root/repo/src/lfd/src/hamiltonian.cpp" "src/lfd/CMakeFiles/lfd.dir/src/hamiltonian.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/hamiltonian.cpp.o.d"
  "/root/repo/src/lfd/src/init.cpp" "src/lfd/CMakeFiles/lfd.dir/src/init.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/init.cpp.o.d"
  "/root/repo/src/lfd/src/nlp_prop.cpp" "src/lfd/CMakeFiles/lfd.dir/src/nlp_prop.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/nlp_prop.cpp.o.d"
  "/root/repo/src/lfd/src/observables.cpp" "src/lfd/CMakeFiles/lfd.dir/src/observables.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/observables.cpp.o.d"
  "/root/repo/src/lfd/src/potential.cpp" "src/lfd/CMakeFiles/lfd.dir/src/potential.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/potential.cpp.o.d"
  "/root/repo/src/lfd/src/remap_occ.cpp" "src/lfd/CMakeFiles/lfd.dir/src/remap_occ.cpp.o" "gcc" "src/lfd/CMakeFiles/lfd.dir/src/remap_occ.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/dcmesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/qxmd/CMakeFiles/qxmd.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
