file(REMOVE_RECURSE
  "liblfd.a"
)
