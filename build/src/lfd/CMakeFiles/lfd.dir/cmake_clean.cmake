file(REMOVE_RECURSE
  "CMakeFiles/lfd.dir/src/calc_energy.cpp.o"
  "CMakeFiles/lfd.dir/src/calc_energy.cpp.o.d"
  "CMakeFiles/lfd.dir/src/current.cpp.o"
  "CMakeFiles/lfd.dir/src/current.cpp.o.d"
  "CMakeFiles/lfd.dir/src/engine.cpp.o"
  "CMakeFiles/lfd.dir/src/engine.cpp.o.d"
  "CMakeFiles/lfd.dir/src/forces.cpp.o"
  "CMakeFiles/lfd.dir/src/forces.cpp.o.d"
  "CMakeFiles/lfd.dir/src/hamiltonian.cpp.o"
  "CMakeFiles/lfd.dir/src/hamiltonian.cpp.o.d"
  "CMakeFiles/lfd.dir/src/init.cpp.o"
  "CMakeFiles/lfd.dir/src/init.cpp.o.d"
  "CMakeFiles/lfd.dir/src/nlp_prop.cpp.o"
  "CMakeFiles/lfd.dir/src/nlp_prop.cpp.o.d"
  "CMakeFiles/lfd.dir/src/observables.cpp.o"
  "CMakeFiles/lfd.dir/src/observables.cpp.o.d"
  "CMakeFiles/lfd.dir/src/potential.cpp.o"
  "CMakeFiles/lfd.dir/src/potential.cpp.o.d"
  "CMakeFiles/lfd.dir/src/remap_occ.cpp.o"
  "CMakeFiles/lfd.dir/src/remap_occ.cpp.o.d"
  "liblfd.a"
  "liblfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
