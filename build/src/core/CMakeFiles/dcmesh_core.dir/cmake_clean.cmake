file(REMOVE_RECURSE
  "CMakeFiles/dcmesh_core.dir/src/checkpoint.cpp.o"
  "CMakeFiles/dcmesh_core.dir/src/checkpoint.cpp.o.d"
  "CMakeFiles/dcmesh_core.dir/src/config.cpp.o"
  "CMakeFiles/dcmesh_core.dir/src/config.cpp.o.d"
  "CMakeFiles/dcmesh_core.dir/src/driver.cpp.o"
  "CMakeFiles/dcmesh_core.dir/src/driver.cpp.o.d"
  "CMakeFiles/dcmesh_core.dir/src/output.cpp.o"
  "CMakeFiles/dcmesh_core.dir/src/output.cpp.o.d"
  "CMakeFiles/dcmesh_core.dir/src/presets.cpp.o"
  "CMakeFiles/dcmesh_core.dir/src/presets.cpp.o.d"
  "libdcmesh_core.a"
  "libdcmesh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcmesh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
