# Empty compiler generated dependencies file for dcmesh_core.
# This may be replaced when dependencies are built.
