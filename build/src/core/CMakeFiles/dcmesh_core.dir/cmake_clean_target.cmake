file(REMOVE_RECURSE
  "libdcmesh_core.a"
)
