# Empty dependencies file for xehpc.
# This may be replaced when dependencies are built.
