file(REMOVE_RECURSE
  "CMakeFiles/xehpc.dir/src/app_model.cpp.o"
  "CMakeFiles/xehpc.dir/src/app_model.cpp.o.d"
  "CMakeFiles/xehpc.dir/src/device.cpp.o"
  "CMakeFiles/xehpc.dir/src/device.cpp.o.d"
  "CMakeFiles/xehpc.dir/src/energy.cpp.o"
  "CMakeFiles/xehpc.dir/src/energy.cpp.o.d"
  "CMakeFiles/xehpc.dir/src/roofline.cpp.o"
  "CMakeFiles/xehpc.dir/src/roofline.cpp.o.d"
  "CMakeFiles/xehpc.dir/src/scaling.cpp.o"
  "CMakeFiles/xehpc.dir/src/scaling.cpp.o.d"
  "libxehpc.a"
  "libxehpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xehpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
