
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xehpc/src/app_model.cpp" "src/xehpc/CMakeFiles/xehpc.dir/src/app_model.cpp.o" "gcc" "src/xehpc/CMakeFiles/xehpc.dir/src/app_model.cpp.o.d"
  "/root/repo/src/xehpc/src/device.cpp" "src/xehpc/CMakeFiles/xehpc.dir/src/device.cpp.o" "gcc" "src/xehpc/CMakeFiles/xehpc.dir/src/device.cpp.o.d"
  "/root/repo/src/xehpc/src/energy.cpp" "src/xehpc/CMakeFiles/xehpc.dir/src/energy.cpp.o" "gcc" "src/xehpc/CMakeFiles/xehpc.dir/src/energy.cpp.o.d"
  "/root/repo/src/xehpc/src/roofline.cpp" "src/xehpc/CMakeFiles/xehpc.dir/src/roofline.cpp.o" "gcc" "src/xehpc/CMakeFiles/xehpc.dir/src/roofline.cpp.o.d"
  "/root/repo/src/xehpc/src/scaling.cpp" "src/xehpc/CMakeFiles/xehpc.dir/src/scaling.cpp.o" "gcc" "src/xehpc/CMakeFiles/xehpc.dir/src/scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blas/CMakeFiles/minimkl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
