file(REMOVE_RECURSE
  "libxehpc.a"
)
